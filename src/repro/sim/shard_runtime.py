"""Resident workers for the sharded engine: state lives where it runs.

PR 7's pooled path treated every epoch as a stateless job: the parent
pickled each cell's full carry (controller state dict, generator state,
rng bit-stream) into a fresh :class:`~concurrent.futures.ProcessPoolExecutor`
job, the worker rebuilt the controller (and its strategy-space cache)
from scratch, ran the segment, and pickled the whole carry back.  That
round-trip is pure serialization tax -- the arithmetic is identical
whether the controller object survives between epochs or not.

This module keeps the state resident instead:

* :class:`CellRuntime` -- one cell's long-lived execution state: the
  controller (built once, strategy-space cache kept hot), the state
  generator and its rng, the fault-plan cursor (plan state + plan rng),
  the per-cell probe/monitor suite.  The sequential path drives these
  in-process; resident workers hold the same objects across epochs.
* ``_worker_main`` / :class:`_WorkerRuntime` -- the worker process: its
  cells are pinned at spawn, and per epoch it receives only
  ``(slot range, budget shares, shared-state buffer index)`` and
  returns compact deltas (metric lists, a telemetry
  :meth:`~repro.obs.telemetry.MetricsRegistry.snapshot_delta`, new
  monitor alerts).  Carry state crosses the pipe only on ``pull``
  (checkpoint/salvage) and ``load``/``replay`` (resume/rebuild).
* :class:`ResidentWorker` -- the parent-side handle: spawn, command
  round-trips with a heartbeat-aware silence deadline (the hung-worker
  watchdog: workers ping between cells, so a stuck worker -- not just
  a dead one -- blows the deadline and is killed), kill/respawn for
  the salvage path.
* :class:`SharedStatePlanner` -- the parent-side epoch pipeline: it
  owns each cell's live state stream, compiles epoch ``e + 1``'s slot
  states into double-buffered
  :class:`~repro.kernels.shm.SharedStateBlock` struct-of-arrays
  segments while the workers are still solving epoch ``e``, and the
  workers map them zero-copy (:meth:`~repro.core.state.SlotState.trusted`
  views over shared memory).

Bit-identity: every byte of cross-slot state is either deterministic in
the slot index or an exactly-captured rng stream, so a worker rebuilt
after a crash can *replay* its cells from slot 0 (or from the last
pulled carry) under the recorded per-epoch budget shares and land in
exactly the state the dead worker held -- the same argument the
checkpoint layer proves for resume, applied per cell.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import time

import numpy as np

from repro.core.budget import CoordinatedBudget
from repro.core.state import SlotState
from repro.kernels.shm import SharedStateBlock
from repro.obs.monitors import MonitorSuite, default_monitors
from repro.obs.probe import Probe
from repro.obs.telemetry import MetricsRegistry, TelemetrySink, telemetry_context
from repro.sim.engine import run_simulation
from repro.sim.scenario import Scenario

logger = logging.getLogger(__name__)

__all__ = [
    "CellRuntime",
    "ResidentWorker",
    "SharedStatePlanner",
    "WorkerFailure",
]

_METRIC_KEYS = ("latency", "cost", "theta", "backlog", "solve_seconds", "price")


def _mp_context():
    """Fork when the platform has it (fast spawn, no import re-exec);
    the default start method otherwise."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


class WorkerFailure(RuntimeError):
    """A resident worker died, timed out, or reported a command error.

    Args:
        hung: The failure was a heartbeat-silence timeout -- the worker
            process is (probably) still alive but stuck, as opposed to
            dead or erroring.  The parent's salvage path is identical
            either way (kill, respawn, replay); the flag only feeds
            the ``shard.worker_hung`` observability trail.
    """

    def __init__(self, message: str, *, hung: bool = False) -> None:
        super().__init__(message)
        self.hung = bool(hung)


class CellRuntime:
    """One cell's execution state, advanced in place epoch by epoch.

    Mirrors exactly what the sequential sharded path keeps between
    epochs -- same controller construction (same rng stream labels,
    same telemetry context), same continuing state stream, same
    fault-plan cursor -- so a run driven through :meth:`run_epoch` is
    bit-identical whether the runtime lives in the parent or inside a
    resident worker.

    Args:
        cell: Cell index (labels telemetry/monitors).
        scenario: The cell's scenario (its optional ``fault_plan`` is
            applied on top of every segment from the plan's own stream).
        schedule: The cell's budget reference; created when omitted.
        own_states: Draw slot states from the cell's own stream.  With
            shared-memory states the parent owns the live stream and
            passes each epoch's states in; the runtime's local stream
            is then only the replay/salvage base.
    """

    def __init__(
        self,
        cell: int,
        scenario: Scenario,
        *,
        controller: str,
        v: float,
        z: "int | None",
        backend: "str | None",
        controller_params: dict,
        budget: float,
        compiled: bool,
        chunk: int,
        probe: "Probe | None" = None,
        registry: "MetricsRegistry | None" = None,
        monitors: bool = False,
        schedule: "CoordinatedBudget | None" = None,
        own_states: bool = True,
    ) -> None:
        from repro.api import make_controller

        self.cell = int(cell)
        self.scenario = scenario
        self.compiled = bool(compiled)
        self.chunk = int(chunk)
        self.probe = probe
        self.own_states = bool(own_states)
        self.suite: "MonitorSuite | None" = None
        if monitors:
            self.suite = MonitorSuite(
                default_monitors(budget=float(budget), network=scenario.network),
                labels={"cell": self.cell},
            ).attach(probe)
        self.schedule = (
            schedule if schedule is not None else CoordinatedBudget(float(budget))
        )
        with telemetry_context(registry, {"cell": self.cell}):
            self.controller = make_controller(
                controller,
                scenario,
                v=v,
                z=z,
                budget=self.schedule,
                tracer=probe,
                engine_backend=backend,
                **controller_params,
            )
        self.generator = scenario.generator
        self.generator.reset()
        self.state_rng = scenario.state_rng()
        self.plan = scenario.fault_plan if scenario.fault_plan else None
        if self.plan is not None:
            self.plan.reset()
            self.plan_rng = scenario.fault_rng()
        else:
            self.plan_rng = None
        self._alerts_shipped = 0

    def segment(self, start: int, count: int, states=None):
        """The slot-state iterator for one epoch (fault plan applied)."""
        if states is None:
            if self.compiled:
                states = self.generator.compile_states(
                    count, self.state_rng, chunk=self.chunk, start=start
                )
            else:
                states = self.generator.states(count, self.state_rng, start=start)
        if self.plan is not None:
            states = self.plan.stream(
                states, self.scenario.network, self.plan_rng, self.probe
            )
        return states

    def run_epoch(
        self, start: int, count: int, budget: float, states=None
    ) -> "tuple[dict, float]":
        """Advance the cell *count* slots under *budget*; return the
        segment's metric lists and its mean spend."""
        self.schedule.set(float(budget))
        part = run_simulation(
            self.controller, self.segment(start, count, states), tracer=self.probe
        )
        metrics = {k: getattr(part, k).tolist() for k in _METRIC_KEYS}
        return metrics, float(part.time_average_cost())

    # -- carry (checkpoint / salvage only; never per epoch) ---------------

    def carry(self) -> dict:
        out = {
            "controller": self.controller.state_dict(),
            "generator": self.generator.state_dict(),
            "state_rng": self.state_rng.bit_generator.state,
        }
        if self.plan is not None:
            out["plan"] = self.plan.state_dict()
            out["plan_rng"] = self.plan_rng.bit_generator.state
        return out

    def load_carry(self, carry: dict) -> None:
        self.controller.load_state_dict(carry["controller"])
        self.generator.load_state_dict(carry["generator"])
        self.state_rng.bit_generator.state = carry["state_rng"]
        if self.plan is not None and carry.get("plan") is not None:
            self.plan.load_state_dict(carry["plan"])
            self.plan_rng.bit_generator.state = carry["plan_rng"]

    # -- monitor alert shipping -------------------------------------------

    def new_alerts(self) -> "list[dict]":
        """Alerts raised since the last call (shipped per epoch)."""
        if self.suite is None:
            return []
        alerts = self.suite.alerts
        fresh = alerts[self._alerts_shipped :]
        self._alerts_shipped = len(alerts)
        return [a.to_dict() for a in fresh]

    def mark_alerts_shipped(self) -> None:
        """Swallow replayed-epoch alerts (the parent already saw them
        live from the worker that died)."""
        if self.suite is not None:
            self._alerts_shipped = len(self.suite.alerts)


# -- the worker process ----------------------------------------------------


#: How long the ``hang`` chaos seam sleeps (seconds).  Far beyond any
#: test's watchdog deadline; the parent kills the worker long before
#: the sleep completes.
_CHAOS_HANG_SECONDS = 600.0


class _WorkerRuntime:
    """Everything one resident worker owns for its pinned cells."""

    def __init__(self, payload: dict) -> None:
        #: Installed by ``_worker_main`` (which owns the pipe): called
        #: between cells so the parent's watchdog sees progress.
        self.heartbeat = None
        self.cells: "list[int]" = list(payload["cells"])
        self.trace_phases: bool = payload["trace_phases"]
        telemetry: bool = payload["telemetry"]
        monitors: bool = payload["monitors"]
        self.registry = MetricsRegistry() if telemetry else None
        self.blocks: "dict[int, SharedStateBlock]" = {}
        for c, descriptor in (payload.get("shared") or {}).items():
            self.blocks[c] = SharedStateBlock.attach(descriptor)
        want_probe = self.trace_phases or telemetry or monitors
        self.runtimes: "dict[int, CellRuntime]" = {}
        for c in self.cells:
            probe = Probe() if want_probe else None
            if self.registry is not None:
                probe.add_sink(TelemetrySink(self.registry, labels={"cell": c}))
            self.runtimes[c] = CellRuntime(
                c,
                payload["scenarios"][c],
                controller=payload["controller"],
                v=payload["v"],
                z=payload["z"],
                backend=payload["backends"][c],
                controller_params=payload["controller_params"],
                budget=payload["initial_budgets"][c],
                compiled=payload["compiled"],
                chunk=payload["chunk"],
                probe=probe,
                registry=self.registry,
                monitors=monitors,
                own_states=c not in self.blocks,
            )

    def _block_states(self, cell: int, buffer: int, start: int, count: int):
        arrays = self.blocks[cell].arrays(buffer)
        cycles = arrays["cycles"]
        bits = arrays["bits"]
        se = arrays["se"]
        price = arrays["price"]
        for j in range(count):
            yield SlotState.trusted(
                t=start + j,
                cycles=cycles[j],
                bits=bits[j],
                spectral_efficiency=se[j],
                price=float(price[j]),
            )

    def _beat(self) -> None:
        if self.heartbeat is not None:
            self.heartbeat()

    def run_epoch(self, data: dict) -> dict:
        if data.get("hang"):
            # Chaos seam: go silent *before* any heartbeat, exactly
            # like a worker stuck in an infinite loop mid-epoch.
            time.sleep(_CHAOS_HANG_SECONDS)
        start, count = data["start"], data["count"]
        buffer = data.get("buffer")
        budgets = data["budgets"]
        cells_out = {}
        for c in self.cells:
            self._beat()
            runtime = self.runtimes[c]
            states = (
                self._block_states(c, buffer, start, count)
                if buffer is not None and c in self.blocks
                else None
            )
            metrics, spend = runtime.run_epoch(
                start, count, budgets[c], states=states
            )
            out = {"metrics": metrics, "spend": spend}
            if runtime.suite is not None:
                out["alerts"] = runtime.new_alerts()
            cells_out[c] = out
        reply = {"cells": cells_out}
        if self.registry is not None:
            reply["telemetry"] = self.registry.snapshot_delta()
        return reply

    def pull(self) -> dict:
        return {c: self.runtimes[c].carry() for c in self.cells}

    def load(self, data: dict) -> None:
        for c, carry in data["carries"].items():
            self.runtimes[c].load_carry(carry)

    def replay(self, data: dict) -> None:
        """Re-run recorded epochs to rebuild in-place state (salvage).

        Metrics are discarded (the parent kept the originals), the
        telemetry delta is swallowed (the dead worker already shipped
        those epochs), and replayed alerts are marked shipped -- only
        the cross-slot state matters, and it lands bit-identical
        because every input (budgets, streams) is the recorded one.
        """
        for start, count, budgets in data["epochs"]:
            self._beat()
            for c in self.cells:
                self.runtimes[c].run_epoch(start, count, budgets[c])
        if self.registry is not None:
            self.registry.snapshot_delta()
        for runtime in self.runtimes.values():
            runtime.mark_alerts_shipped()

    def finish(self) -> dict:
        out = {}
        for c in self.cells:
            runtime = self.runtimes[c]
            cell: dict = {}
            if runtime.suite is not None:
                report = runtime.suite.finish()
                cell["statuses"] = [
                    {
                        "name": s.name,
                        "status": s.status,
                        "detail": s.detail,
                        "alerts": s.alerts,
                    }
                    for s in report.statuses
                ]
                cell["alerts"] = [a.to_dict() for a in report.alerts]
            if self.trace_phases and runtime.probe is not None:
                cell["phase_state"] = runtime.probe.phases.state_dict()
            out[c] = cell
        reply = {"cells": out}
        if self.registry is not None:
            # End-of-run monitor checks count into the registry after
            # the last epoch's delta shipped; flush the remainder.
            reply["telemetry"] = self.registry.snapshot_delta()
        return reply

    def close(self) -> None:
        for block in self.blocks.values():
            block.close()


def _worker_main(conn, payload: dict) -> None:
    """Resident worker loop: build once, answer commands until stopped."""
    try:
        runtime = _WorkerRuntime(payload)
    except BaseException as exc:  # noqa: BLE001 - ship init failures home
        try:
            conn.send(("error", {"stage": "init", "error": repr(exc)}))
        except Exception:
            pass
        return

    def heartbeat() -> None:
        # Progress pings between cells: the parent's recv() swallows
        # them and resets its silence timer, so a slow-but-alive epoch
        # never trips the watchdog while a hung worker does.
        try:
            conn.send(("hb", None))
        except Exception:
            pass  # parent gone; the command loop will notice

    runtime.heartbeat = heartbeat
    try:
        while True:
            try:
                command, data = conn.recv()
            except (EOFError, OSError):
                break
            try:
                if command == "epoch":
                    conn.send(("ok", runtime.run_epoch(data)))
                elif command == "pull":
                    conn.send(("ok", runtime.pull()))
                elif command == "load":
                    runtime.load(data)
                    conn.send(("ok", None))
                elif command == "replay":
                    runtime.replay(data)
                    conn.send(("ok", None))
                elif command == "finish":
                    conn.send(("ok", runtime.finish()))
                elif command == "stop":
                    break
                else:
                    conn.send(
                        ("error", {"error": f"unknown command {command!r}"})
                    )
            except BaseException as exc:  # noqa: BLE001 - report, then die
                # In-place state may be mid-epoch (poisoned); the parent
                # kills and rebuilds this worker rather than reusing it.
                try:
                    conn.send(
                        ("error", {"cmd": command, "error": repr(exc)})
                    )
                except Exception:
                    pass
                break
    finally:
        runtime.close()
        try:
            conn.close()
        except Exception:
            pass


# -- the parent-side handle ------------------------------------------------


class ResidentWorker:
    """Parent handle for one resident worker process.

    The init *payload* (cell scenarios, controller recipe, initial
    budget shares, shared-block descriptors) is kept so :meth:`respawn`
    can rebuild a dead worker identically; the salvage path then
    replays it back to the current slot.
    """

    def __init__(self, index: int, cells: "list[int]", payload: dict, ctx=None) -> None:
        self.index = int(index)
        self.cells = list(cells)
        self._payload = payload
        self._ctx = ctx if ctx is not None else _mp_context()
        self.process = None
        self.conn = None
        self.spawn()

    def spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=_worker_main, args=(child_conn, self._payload), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def send(self, command: str, data: "dict | None" = None) -> None:
        try:
            self.conn.send((command, data))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerFailure(
                f"worker {self.index}: pipe broken sending {command!r}: {exc}"
            ) from exc

    def recv(self, timeout: "float | None" = None):
        """Wait for the next reply, heartbeat-aware.

        *timeout* is a **silence** deadline, not a total-reply one:
        workers send ``("hb", None)`` pings as they progress through
        their cells, every ping restarts the timer, and only a worker
        silent for a full *timeout* raises -- with ``hung=True``, since
        a worker that stopped talking without closing the pipe is
        stuck, not dead (a dead worker's closed pipe raises EOF
        immediately instead).
        """
        try:
            while True:
                if timeout is not None and not self.conn.poll(timeout):
                    raise WorkerFailure(
                        f"worker {self.index}: watchdog: no heartbeat or "
                        f"reply within {timeout}s",
                        hung=True,
                    )
                status, payload = self.conn.recv()
                if status != "hb":
                    break
        except WorkerFailure:
            raise
        except (EOFError, OSError, ConnectionError) as exc:
            raise WorkerFailure(f"worker {self.index} died: {exc}") from exc
        if status != "ok":
            raise WorkerFailure(f"worker {self.index} failed: {payload}")
        return payload

    def call(self, command: str, data: "dict | None" = None,
             timeout: "float | None" = None):
        self.send(command, data)
        return self.recv(timeout)

    def kill(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except Exception:
                pass
            self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5)
            self.process = None

    def respawn(self) -> None:
        """Replace a dead worker with a fresh one (state at slot 0)."""
        self.kill()
        self.spawn()

    def stop(self) -> None:
        """Graceful shutdown; falls back to kill."""
        try:
            if self.conn is not None:
                self.send("stop")
        except WorkerFailure:
            pass
        if self.process is not None:
            self.process.join(timeout=5)
        self.kill()


# -- parent-side shared-state pipeline -------------------------------------


class SharedStatePlanner:
    """Owns the live per-cell state streams and fills shared blocks.

    The parent draws each epoch's slot states exactly the way the
    sequential path would (same generator calls, same rng consumption)
    and writes them into per-cell double-buffered struct-of-arrays
    blocks; workers map the blocks zero-copy.  Buffer ``e % 2`` holds
    epoch ``e``, so filling epoch ``e + 1`` never races the workers
    still reading epoch ``e``, and the fill for ``e + 2`` only starts
    after ``e``'s results were collected.
    """

    #: Slot-state fields materialised per cell (optional arrays --
    #: fronthaul/availability -- are unsupported; see :meth:`supported`).
    _BUFFERS = 2

    def __init__(
        self, scenarios: "list[Scenario]", *, epoch: int, compiled: bool, chunk: int
    ) -> None:
        self.scenarios = scenarios
        self.compiled = bool(compiled)
        self.chunk = int(chunk)
        self.blocks: "dict[int, SharedStateBlock]" = {}
        self.rngs = {}
        # Boundary stream states captured at each fill: the pipelined
        # fill of epoch ``e + 1`` advances the live stream past the
        # carry pull at the end of epoch ``e``, so carries must read
        # the state snapshotted when ``e`` itself was compiled.
        self._boundaries: "dict[int, dict[int, dict]]" = {}
        for c, sc in enumerate(scenarios):
            devices = sc.network.num_devices
            stations = sc.network.num_base_stations
            self.blocks[c] = SharedStateBlock.create(
                {
                    "cycles": ((epoch, devices), np.float64),
                    "bits": ((epoch, devices), np.float64),
                    "se": ((epoch, devices, stations), np.float64),
                    "price": ((epoch,), np.float64),
                },
                buffers=self._BUFFERS,
            )
            sc.generator.reset()
            self.rngs[c] = sc.state_rng()

    @staticmethod
    def supported(scenarios: "list[Scenario]") -> bool:
        """Whether every cell's states fit the fixed-field layout.

        Fronthaul/outage models emit optional per-slot arrays the
        struct-of-arrays blocks do not carry, and a fault plan must
        wrap the stream inside the worker (its components build new
        states); those compositions fall back to worker-side drawing.
        """
        for sc in scenarios:
            generator = sc.generator
            if generator.fronthaul is not None or generator.faults is not None:
                return False
            if sc.fault_plan:
                return False
        return True

    def descriptors(self) -> dict:
        return {c: block.descriptor() for c, block in self.blocks.items()}

    def fill(self, epoch_index: int, start: int, count: int) -> int:
        """Compile slots ``[start, start + count)`` for every cell into
        the epoch's buffer; returns the buffer index workers read.

        Also snapshots the end-of-epoch stream state (generator + rng)
        under *epoch_index* for :meth:`stream_state`; only the last two
        boundaries are kept (the double buffer's working set).
        """
        buffer = epoch_index % self._BUFFERS
        boundary = {}
        for c, sc in enumerate(self.scenarios):
            arrays = self.blocks[c].arrays(buffer)
            if self.compiled:
                stream = sc.generator.compile_states(
                    count, self.rngs[c], chunk=self.chunk, start=start
                )
            else:
                stream = sc.generator.states(count, self.rngs[c], start=start)
            for j, state in enumerate(stream):
                arrays["cycles"][j] = state.cycles
                arrays["bits"][j] = state.bits
                arrays["se"][j] = state.spectral_efficiency
                arrays["price"][j] = state.price
            boundary[c] = {
                "generator": sc.generator.state_dict(),
                "state_rng": self.rngs[c].bit_generator.state,
            }
        self._boundaries[epoch_index] = boundary
        for old in [k for k in self._boundaries if k < epoch_index - 1]:
            del self._boundaries[old]
        return buffer

    # -- stream state for carries (the parent owns the live stream) -------

    def stream_state(self, cell: int, epoch_index: int) -> dict:
        """The stream state as of the *end* of epoch *epoch_index* --
        i.e. the boundary captured when that epoch's states compiled,
        immune to the fill-ahead having advanced the live stream."""
        return self._boundaries[epoch_index][cell]

    def load_stream_state(self, cell: int, carry: dict) -> None:
        self.scenarios[cell].generator.load_state_dict(carry["generator"])
        self.rngs[cell].bit_generator.state = carry["state_rng"]

    def close(self) -> None:
        for block in self.blocks.values():
            block.close()
