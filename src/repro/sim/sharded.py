"""Sharded multi-cell simulation: one DPP controller per cell.

The monolithic slot solve costs superlinearly in the device count
``I``, so one controller over a metro-scale deployment is hopeless.
This module runs an independent :class:`~repro.core.controller.DPPController`
(own virtual queue, own rng streams, own state stream) inside each cell
of a :class:`~repro.network.partition.CellPlan`, while a
:class:`~repro.core.budget.BudgetCoordinator` splits the global energy
budget ``Cbar`` across cells every *epoch* -- proportional pacing on
observed per-cell spend, conserving the total exactly, so the sum of
the per-cell virtual-queue constraints is the global constraint.

Execution is epoch-segmented exactly like checkpoint/resume: each cell
keeps one continuing state rng and draws its compiled states segment by
segment (``compile_states(count, rng, start=completed)``), which is
bit-identical to one uninterrupted pass.  With ``processes > 1`` the
default ``runtime="resident"`` pins each cell's carry state inside a
long-lived worker process (:mod:`repro.sim.shard_runtime`): controllers
advance in place for the whole run, the parent ships only ``(slot
range, budget shares)`` per epoch and receives compact metric /
telemetry deltas back, compiled slot states travel through
double-buffered shared-memory struct-of-arrays blocks (epoch ``e + 1``
compiles while epoch ``e`` solves), and carry state crosses the process
boundary only for checkpoints and salvage.  ``runtime="legacy"`` keeps
PR 7's stateless epoch-job pool (full carry pickled per epoch) as the
comparison oracle; ``benchmarks/bench_shard_runtime.py`` gates the two
paths' fingerprints against each other.

Fault tolerance: a resident worker that dies or times out is killed,
respawned, and *replayed* -- its cells re-run from slot 0 (or from the
last pulled carry) under the recorded per-epoch budget shares, which
lands bit-identically in the state the dead worker held, so the merged
trajectories match an undisturbed run exactly.  ``checkpoint=`` /
``resume=`` on :meth:`ShardedController.run` extend the same carry
machinery to on-disk snapshots
(:class:`~repro.sim.checkpoint.ShardCheckpoint`).

The one-cell plan degenerates to the unsharded pipeline: the original
scenario object is reused verbatim, the coordinator's single share is
the whole budget, and the merged trajectories are bit-identical to
``repro.api.run`` without sharding (asserted by
``benchmarks/bench_scale_sweep.py`` and ``tests/test_sharding.py``) --
including a scenario-level :class:`~repro.sim.faults.FaultPlan`, which
every execution path applies from the plan's own stream with its cursor
(plan state + plan rng) carried across epochs.
"""

from __future__ import annotations

import copy
import hashlib
import json
import logging
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.budget import BudgetCoordinator, ConstantBudget
from repro.exceptions import CheckpointError, ConfigurationError, SolverError
from repro.network.partition import CellPlan, extract_subnetwork, partition_cells
from repro.obs.monitors import (
    Alert,
    HealthReport,
    MonitorStatus,
    MonitorSuite,
    default_monitors,
)
from repro.obs.probe import Probe, Tracer, as_tracer
from repro.obs.telemetry import MetricsRegistry, TelemetrySink, telemetry_context
from repro.radio.mobility import StaticMobility
from repro.sim.checkpoint import ShardCheckpoint
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult, SimulationSummary
from repro.sim.scenario import Scenario, StateGenerator
from repro.sim.shard_runtime import (
    CellRuntime,
    ResidentWorker,
    SharedStatePlanner,
    WorkerFailure,
    _mp_context,
)

logger = logging.getLogger(__name__)

__all__ = [
    "RUNTIME_NAMES",
    "ShardedController",
    "ShardedResult",
    "merge_cell_metrics",
    "run_sharded",
    "shard_scenarios",
]

#: Pooled execution runtimes: ``"resident"`` keeps each cell's state
#: inside a long-lived worker (the default); ``"legacy"`` is PR 7's
#: stateless epoch-job pool, kept as the bit-identical oracle.
RUNTIME_NAMES = ("resident", "legacy")


class _HaltRequested(RuntimeError):
    """Test seam: the run was asked to stop right after a checkpoint
    write (set ``ShardedController._halt_after_slots``)."""


@dataclass
class _CheckpointPlan:
    """Where and how often :meth:`ShardedController.run` snapshots."""

    path: Path
    every: int

_METRIC_KEYS = ("latency", "cost", "theta", "backlog", "solve_seconds", "price")

#: Monitor-status severity ranking used when folding per-epoch worker
#: statuses into one cross-run verdict per (cell, monitor).
_STATUS_RANK = {"ok": 0, "warning": 1, "critical": 2}


def _check_shardable(scenario: Scenario) -> None:
    """One structured capability check for multi-cell sharding.

    Collects *every* unsupported feature of the scenario and raises a
    single :class:`ConfigurationError` naming each offending feature
    and the flag combination that would work -- the did-you-mean style
    of ``make_controller`` -- instead of failing one bare check at a
    time.
    """
    problems: list[str] = []
    generator = scenario.generator
    if type(generator.mobility) is not StaticMobility:
        problems.append(
            f"mobility={type(generator.mobility).__name__} -- sharded runs "
            "require static mobility (devices must stay in their cell); "
            "drop the mobility model or run unsharded (cells=1)"
        )
    if not hasattr(generator.tasks, "subset"):
        problems.append(
            f"tasks={type(generator.tasks).__name__} -- the task generator "
            "has no subset() projection, so devices cannot be split across "
            "cells; implement subset() or run unsharded (cells=1)"
        )
    if problems:
        raise ConfigurationError(
            "this scenario cannot be sharded across multiple cells: "
            + "; ".join(problems)
        )


def shard_scenarios(scenario: Scenario, plan: CellPlan) -> list[Scenario]:
    """Carve one scenario into an independent scenario per cell.

    The one-cell plan returns ``[scenario]`` -- the *same object*, same
    seed bank, same stream labels, fault plan included -- which is what
    makes the one-cell sharded run bit-identical to the unsharded
    pipeline.  Multi-cell plans give each cell its own sub-topology
    (:func:`~repro.network.partition.extract_subnetwork`), a sliced
    task generator, deep-copied channel/price/fronthaul/outage models,
    a child seed bank (independent streams per cell), a fair share of
    the budget, and -- when the scenario carries one -- the
    :class:`~repro.sim.faults.FaultPlan` projected onto the cell
    (:meth:`~repro.sim.faults.FaultPlan.subset`: independent per-cell
    chains from the cell's own fault stream, scripted incidents split
    by target with local indices).

    Raises:
        ConfigurationError: A *multi-cell* plan was requested for a
            scenario using features the sharded engine cannot split
            (mobility, an unsliceable task generator); the message
            names every offending feature and the working alternative.
    """
    if plan.num_cells == 1:
        return [scenario]
    _check_shardable(scenario)
    generator = scenario.generator
    total_devices = scenario.network.num_devices
    out = []
    for cell in plan.cells:
        subnetwork, maps = extract_subnetwork(scenario.network, cell)
        tasks = generator.tasks.subset(maps.devices)
        cell_generator = StateGenerator(
            subnetwork,
            tasks,
            copy.deepcopy(generator.channel),
            copy.deepcopy(generator.prices),
            price_scale=generator.price_scale,
            fronthaul=copy.deepcopy(generator.fronthaul),
            faults=copy.deepcopy(generator.faults),
        )
        fault_plan = (
            scenario.fault_plan.subset(
                maps.devices, maps.base_stations, maps.servers
            )
            if scenario.fault_plan
            else None
        )
        out.append(
            Scenario(
                network=subnetwork,
                generator=cell_generator,
                seeds=scenario.seeds.child(f"cell{cell.index}"),
                budget=scenario.budget * cell.num_devices / total_devices,
                fault_plan=fault_plan,
            )
        )
    return out


def merge_cell_metrics(
    metrics_by_cell: "list[dict[str, list[float]]]", budget: float
) -> SimulationResult:
    """Fold per-cell trajectories into one cross-cell result.

    Latency, cost, theta, backlog, and solve time are *totals* across
    devices/queues, so they sum across cells per slot; the price is
    averaged (cells draw their own price noise).  Budget conservation
    makes the merged theta exactly ``C_t - Cbar`` -- the same semantics
    as an unsharded run against the global budget.
    """
    if not metrics_by_cell:
        raise ConfigurationError("nothing to merge")
    horizons = {len(m["latency"]) for m in metrics_by_cell}
    if len(horizons) != 1:
        raise ConfigurationError(
            f"cells disagree on the simulated horizon: {sorted(horizons)}"
        )
    stacked = {
        key: np.array([m[key] for m in metrics_by_cell], dtype=np.float64)
        for key in _METRIC_KEYS
    }
    return SimulationResult(
        latency=stacked["latency"].sum(axis=0),
        cost=stacked["cost"].sum(axis=0),
        theta=stacked["theta"].sum(axis=0),
        backlog=stacked["backlog"].sum(axis=0),
        solve_seconds=stacked["solve_seconds"].sum(axis=0),
        price=stacked["price"].mean(axis=0),
        budget=budget,
    )


@dataclass
class ShardedResult:
    """Outcome of one sharded run.

    Attributes:
        merged: The cross-cell :class:`~repro.sim.results.SimulationResult`
            (global totals per slot; drop-in comparable to an unsharded
            run against the global budget).
        cells: Per-cell summaries, in cell order.
        budgets: ``(epochs, cells)`` budget references applied per
            epoch; every row sums to the global budget.
        plan: The cell plan the run executed.
        health: Combined per-cell :class:`~repro.obs.monitors.HealthReport`
            when monitors were requested (statuses are named
            ``cell<N>/<monitor>``; every alert carries a ``cell`` label
            in its data), ``None`` otherwise.
    """

    merged: SimulationResult
    cells: list[SimulationSummary] = field(default_factory=list)
    budgets: "np.ndarray | None" = None
    plan: CellPlan | None = None
    health: "HealthReport | None" = None

    def speedup_basis(self) -> int:
        """Total devices simulated (for slots/s-per-device accounting)."""
        return int(sum(c.num_devices for c in self.plan.cells)) if self.plan else 0


# -- worker-pool plumbing (mirrors repro.sim.replication) ----------------

#: Per-worker context installed once by :func:`_init_shard_worker`.
_SHARD_CONTEXT: "dict | None" = None


def _init_shard_worker(context: dict) -> None:
    """Pool initializer: pin the cell scenarios + controller recipe."""
    global _SHARD_CONTEXT
    _SHARD_CONTEXT = context


def _build_cell_controller(
    scenario: Scenario,
    *,
    controller: str,
    v: float,
    z: "int | None",
    budget,
    engine_backend: "str | None",
    tracer: "Tracer | None",
    controller_params: dict,
):
    """One cell's controller, built the way ``api.run`` builds the
    unsharded one (same rng stream label, same defaults)."""
    from repro.api import make_controller

    return make_controller(
        controller,
        scenario,
        v=v,
        z=z,
        budget=budget,
        tracer=tracer,
        engine_backend=engine_backend,
        **controller_params,
    )


def _run_epoch_job(job: dict) -> dict:
    """Worker entry point: run one cell's epoch segment.

    The job carries everything the segment needs -- the budget value
    for the epoch and the cross-slot carry (controller / generator /
    state-rng state) -- so any worker can run any cell's next epoch,
    and a retried job replays bit-identically.
    """
    assert _SHARD_CONTEXT is not None, "shard worker pool was not initialised"
    ctx = _SHARD_CONTEXT
    cell = job["cell"]
    scenario: Scenario = ctx["scenarios"][cell]
    telemetry = ctx.get("telemetry", False)
    monitors = ctx.get("monitors", False)
    probe = (
        Probe() if (ctx["trace_phases"] or telemetry or monitors) else None
    )
    registry = None
    if telemetry:
        # A fresh per-job registry: every series is this epoch's delta,
        # which is exactly what the parent's merge_snapshot() wants
        # (counters/histograms add; gauges win by epoch generation).
        registry = MetricsRegistry()
        probe.add_sink(TelemetrySink(registry, labels={"cell": cell}))
    suite = None
    if monitors:
        suite = MonitorSuite(
            default_monitors(budget=job["budget"], network=scenario.network),
            labels={"cell": cell},
        ).attach(probe)
    with telemetry_context(registry, {"cell": cell}):
        controller = _build_cell_controller(
            scenario,
            controller=ctx["controller"],
            v=ctx["v"],
            z=ctx["z"],
            budget=ConstantBudget(job["budget"]),
            engine_backend=ctx["backends"][cell],
            tracer=probe,
            controller_params=ctx["controller_params"],
        )
    generator = scenario.generator
    rng = scenario.state_rng()
    # The fault-plan cursor (plan state + plan rng) rides the job carry
    # exactly like the generator state, so a retried job -- and every
    # epoch after the first -- replays the plan bit-identically.
    plan = scenario.fault_plan if scenario.fault_plan else None
    plan_rng = None
    if plan is not None:
        plan_rng = scenario.fault_rng()
    if job["carry"] is None:
        generator.reset()
        if plan is not None:
            plan.reset()
    else:
        controller.load_state_dict(job["carry"]["controller"])
        generator.load_state_dict(job["carry"]["generator"])
        rng.bit_generator.state = job["carry"]["state_rng"]
        if plan is not None:
            plan.load_state_dict(job["carry"]["plan"])
            plan_rng.bit_generator.state = job["carry"]["plan_rng"]
    # The budget reference for this epoch (load_state_dict does not
    # touch the schedule, so this holds after a carry restore too).
    controller.budget_schedule = ConstantBudget(job["budget"])
    controller.budget = job["budget"]
    if ctx["compiled"]:
        segment = generator.compile_states(
            job["count"], rng, chunk=ctx["chunk"], start=job["start"]
        )
    else:
        segment = generator.states(job["count"], rng, start=job["start"])
    if plan is not None:
        segment = plan.stream(segment, scenario.network, plan_rng, probe)
    part = run_simulation(controller, segment, tracer=probe)
    carry = {
        "controller": controller.state_dict(),
        "generator": generator.state_dict(),
        "state_rng": rng.bit_generator.state,
    }
    if plan is not None:
        carry["plan"] = plan.state_dict()
        carry["plan_rng"] = plan_rng.bit_generator.state
    result = {
        "cell": cell,
        "metrics": {k: getattr(part, k).tolist() for k in _METRIC_KEYS},
        "carry": carry,
        "phase_state": (
            probe.phases.state_dict()
            if probe is not None and ctx["trace_phases"]
            else None
        ),
    }
    if registry is not None:
        result["telemetry"] = registry.snapshot()
    if suite is not None:
        report = suite.finish()
        result["alerts"] = [a.to_dict() for a in report.alerts]
        result["statuses"] = [
            {
                "name": s.name,
                "status": s.status,
                "detail": s.detail,
                "alerts": s.alerts,
            }
            for s in report.statuses
        ]
    return result


class ShardedController:
    """Runs one controller per cell under a shared budget coordinator.

    Args:
        scenario: The global scenario to shard.
        cells: A prebuilt :class:`~repro.network.partition.CellPlan` or
            a target cell count (partitioned with
            :func:`~repro.network.partition.partition_cells` from the
            scenario's ``"cell-partition"`` seed stream).
        controller: Controller family name (any DPP-family name from
            :data:`repro.api.CONTROLLER_NAMES`; ``"fixed"`` has no
            budget-tracking queue and is rejected).
        v: DPP trade-off parameter ``V`` (every cell shares it).
        z: BDMA alternation rounds.
        budget: Global time-average budget ``Cbar``; the scenario's
            when omitted.
        epoch: Slots between budget re-splits.
        coordinator: ``"proportional"`` or ``"static"``
            (:class:`~repro.core.budget.BudgetCoordinator` modes).
        floor_fraction / smoothing: Coordinator pacing knobs.
        engine_backend: Kernel backend for every cell, or one entry per
            cell (heterogeneous shards).
        processes: Worker processes; ``None``/1 runs cells sequentially
            in-process (no pickling), which on a single core is just as
            fast and is bit-identical to the pooled paths.
        runtime: Pooled execution runtime (``processes > 1`` only).
            ``"resident"`` (default) pins each cell's carry state in a
            long-lived worker and ships only slot ranges and budget
            shares per epoch; ``"legacy"`` re-pickles the full carry
            into a stateless pool job every epoch (PR 7 behaviour).
            Both are bit-identical to the sequential path.
        shared_states: Ship compiled slot states to resident workers
            through double-buffered shared-memory blocks, compiling
            epoch ``e + 1`` while epoch ``e`` solves.  ``None`` (auto)
            enables it whenever the scenario's states fit the fixed
            layout (no fronthaul/outage models, no fault plan);
            ``True`` insists and raises when they do not.
        carry_every: Pull per-cell carry state from resident workers
            every N epochs so salvage replays at most N epochs instead
            of the whole run.  ``None`` (default) skips the periodic
            pull; a checkpoint write always pulls.
        timeout_seconds: Per-epoch reply deadline on the pooled paths;
            a blown deadline burns one retry and rebuilds the worker
            (resident) or the pool (legacy).  On the resident runtime
            this is a heartbeat *silence* deadline: workers heartbeat
            as they progress through their cells, each heartbeat
            resets the timer, and a worker silent past the deadline --
            hung, not just dead -- is killed and salvaged through the
            replay path (``shard.worker_hung`` event,
            ``resilience.worker_hangs`` counter).
        max_retries: Extra attempts per epoch, per cell (legacy) or per
            worker (resident), after the first failure.
        tracer: Parent observability tracer; per-cell probes are merged
            into it (``shard.*`` events mark epochs and re-splits).
        registry: A live :class:`~repro.obs.telemetry.MetricsRegistry`
            the run streams into -- per-cell gauges and per-kernel /
            per-phase histograms, labelled ``cell="<index>"``.  On the
            pooled path each epoch job ships a registry snapshot back
            with its carry state and the parent merges it as soon as
            the job completes, so a scrape *during* the run sees every
            finished epoch, not just the final merge.
        monitors: Attach the default health monitors per cell
            (:func:`repro.obs.monitors.default_monitors` wired to each
            cell's budget share and sub-network).  Alerts carry a
            ``cell`` label, are re-emitted on the parent tracer, and the
            combined report lands on ``ShardedResult.health``.  On the
            pooled path monitors run per epoch job, so windowed
            detectors see one epoch at a time; the end-of-run budget
            constraint check still fires every epoch against that
            epoch's share.
        **controller_params: Extra family knobs, validated by
            :func:`repro.api.make_controller`.
    """

    def __init__(
        self,
        scenario: Scenario,
        cells: "CellPlan | int" = 1,
        *,
        controller: str = "dpp",
        v: float = 100.0,
        z: "int | None" = None,
        budget: "float | None" = None,
        epoch: int = 24,
        coordinator: str = "proportional",
        floor_fraction: float = 0.1,
        smoothing: float = 0.5,
        engine_backend: "str | list | tuple | None" = None,
        processes: "int | None" = None,
        runtime: str = "resident",
        shared_states: "bool | None" = None,
        carry_every: "int | None" = None,
        timeout_seconds: "float | None" = None,
        max_retries: int = 2,
        tracer: "Tracer | None" = None,
        registry: "MetricsRegistry | None" = None,
        monitors: bool = False,
        **controller_params: object,
    ) -> None:
        if controller == "fixed":
            raise ConfigurationError(
                "sharded runs need a budget-tracking controller; "
                "'fixed' has no virtual queue to coordinate"
            )
        if epoch < 1:
            raise ConfigurationError(f"epoch must be >= 1, got {epoch}")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if runtime not in RUNTIME_NAMES:
            raise ConfigurationError(
                f"unknown sharded runtime {runtime!r}; "
                f"expected one of {RUNTIME_NAMES}"
            )
        if carry_every is not None and int(carry_every) < 1:
            raise ConfigurationError(
                f"carry_every must be >= 1, got {carry_every}"
            )
        if isinstance(cells, CellPlan):
            plan = cells
        else:
            plan = partition_cells(
                scenario.network, int(cells), rng=scenario.seeds.rng("cell-partition")
            )
        self.plan = plan
        self.scenario = scenario
        self.cell_scenarios = shard_scenarios(scenario, plan)
        self.controller_name = controller
        self.v = v
        self.z = z
        self.total_budget = float(
            scenario.budget if budget is None else budget
        )
        self.epoch = int(epoch)
        self.processes = processes
        self.runtime = runtime
        self.shared_states = shared_states
        self.carry_every = None if carry_every is None else int(carry_every)
        self.timeout_seconds = timeout_seconds
        self.max_retries = int(max_retries)
        self.tracer = as_tracer(tracer)
        self.registry = registry
        self.monitors = bool(monitors)
        self._health: "HealthReport | None" = None
        # Test seams (chaos/resilience suites set these post-construction):
        # kill worker w right after dispatching epoch e; make worker w
        # hang (sleep in its command loop) on epoch e so only the
        # watchdog can catch it; halt the run right after the first
        # checkpoint write at/after a slot count.
        self._chaos_kill: "tuple[int, int] | None" = None
        self._chaos_hang: "tuple[int, int] | None" = None
        self._chaos_fired = False
        self._halt_after_slots: "int | None" = None
        self.controller_params = dict(controller_params)
        self.backends = self._resolve_backends(engine_backend)
        self.coordinator = BudgetCoordinator(
            self.total_budget,
            np.maximum(plan.device_counts().astype(np.float64), 1.0),
            mode=coordinator,
            floor_fraction=floor_fraction,
            smoothing=smoothing,
        )

    def _resolve_backends(self, engine_backend) -> list:
        if engine_backend is None or isinstance(engine_backend, str):
            return [engine_backend] * self.plan.num_cells
        backends = list(engine_backend)
        if len(backends) != self.plan.num_cells:
            raise ConfigurationError(
                f"engine_backend lists one backend per cell: got "
                f"{len(backends)} for {self.plan.num_cells} cells"
            )
        return backends

    # -- sequential path -------------------------------------------------

    def _run_sequential(
        self,
        horizon: int,
        *,
        compiled: bool,
        chunk: int,
        ckpt: "_CheckpointPlan | None" = None,
        resume_state: "ShardCheckpoint | None" = None,
    ) -> "tuple[list[dict], list]":
        trace = self.tracer.enabled
        if resume_state is not None:
            self.coordinator.load_state_dict(resume_state.coordinator)
        # Per-cell probes exist whenever anything consumes events: the
        # parent tracer, the live metrics registry, or the monitors.
        want_probe = trace or self.registry is not None or self.monitors
        initial = self.coordinator.budgets()
        runtimes: "list[CellRuntime]" = []
        for c, sc in enumerate(self.cell_scenarios):
            probe = Probe() if want_probe else None
            if self.registry is not None:
                probe.add_sink(TelemetrySink(self.registry, labels={"cell": c}))
            # The same CellRuntime objects the resident workers hold:
            # state advances in place, no state_dict()/load_state_dict()
            # round-trip between epochs (asserted by test_sharding).
            runtimes.append(
                CellRuntime(
                    c,
                    sc,
                    controller=self.controller_name,
                    v=self.v,
                    z=self.z,
                    backend=self.backends[c],
                    controller_params=self.controller_params,
                    budget=float(initial[c]),
                    compiled=compiled,
                    chunk=chunk,
                    probe=probe,
                    registry=self.registry,
                    monitors=self.monitors,
                    schedule=self.coordinator.schedules[c],
                )
            )
        metrics = [
            {k: [] for k in _METRIC_KEYS} for _ in self.cell_scenarios
        ]
        budgets_applied: list = []
        completed = 0
        if resume_state is not None:
            completed = int(resume_state.completed)
            metrics = [
                {k: list(m.get(k, [])) for k in _METRIC_KEYS}
                for m in resume_state.metrics
            ]
            budgets_applied = [
                np.asarray(b, dtype=np.float64) for b in resume_state.budgets
            ]
            for c, runtime in enumerate(runtimes):
                runtime.load_carry(resume_state.carries[c])
        last_ckpt = completed
        while completed < horizon:
            count = min(self.epoch, horizon - completed)
            budgets = self.coordinator.budgets()
            budgets_applied.append(budgets)
            spends = np.zeros(len(self.cell_scenarios))
            for c, runtime in enumerate(runtimes):
                out, spends[c] = runtime.run_epoch(
                    completed, count, float(budgets[c])
                )
                for key in _METRIC_KEYS:
                    metrics[c][key].extend(out[key])
            completed += count
            new_budgets = self.coordinator.update(spends)
            self._publish_epoch(completed, new_budgets)
            if trace:
                self.tracer.event(
                    "shard.epoch",
                    {
                        "completed": completed,
                        "spends": spends.tolist(),
                        "budgets": new_budgets.tolist(),
                    },
                )
            if ckpt is not None and completed - last_ckpt >= ckpt.every:
                self._write_shard_checkpoint(
                    ckpt.path,
                    horizon,
                    completed,
                    {c: rt.carry() for c, rt in enumerate(runtimes)},
                    metrics,
                    budgets_applied,
                )
                last_ckpt = completed
        if trace and isinstance(self.tracer, Probe):
            for c, runtime in enumerate(runtimes):
                self.tracer.merge_phase_state(
                    runtime.probe.phases.state_dict(), order=(0, c)
                )
        if self.monitors:
            self._health = self._assemble_health_sequential(
                [rt.suite for rt in runtimes]
            )
        return metrics, budgets_applied

    # -- resident path -----------------------------------------------------

    def _run_resident(
        self,
        horizon: int,
        *,
        compiled: bool,
        chunk: int,
        ckpt: "_CheckpointPlan | None" = None,
        resume_state: "ShardCheckpoint | None" = None,
    ) -> "tuple[list[dict], list]":
        """The resident-worker epoch loop (the default pooled runtime).

        Cells are pinned round-robin onto long-lived workers at spawn;
        each epoch the parent ships only ``(slot range, budget shares,
        shared-buffer index)`` and receives metric/telemetry deltas
        back.  While the workers solve epoch ``e`` the parent compiles
        epoch ``e + 1``'s slot states into the shared-memory double
        buffer (when :class:`SharedStatePlanner` supports the scenario)
        and the coordinator's spends arrive just in time for the next
        split.  A dead or hung worker is killed, respawned, restored
        from the last pulled carry (or slot 0), and *replayed* through
        the recorded budget history -- bit-identical, so the merged
        trajectories match an undisturbed run exactly.
        """
        trace = self.tracer.enabled
        num_cells = len(self.cell_scenarios)
        workers_n = max(1, min(int(self.processes), num_cells))
        if resume_state is not None:
            self.coordinator.load_state_dict(resume_state.coordinator)
        shared_ok = SharedStatePlanner.supported(self.cell_scenarios)
        if self.shared_states is True and not shared_ok:
            raise ConfigurationError(
                "shared_states=True needs plain state streams "
                "(no fronthaul/outage models, no fault plan)"
            )
        use_shared = shared_ok if self.shared_states is None else bool(self.shared_states)
        planner = (
            SharedStatePlanner(
                self.cell_scenarios, epoch=self.epoch, compiled=compiled, chunk=chunk
            )
            if use_shared
            else None
        )
        ctx = _mp_context()
        initial = self.coordinator.budgets()
        descriptors = planner.descriptors() if planner is not None else {}
        workers: "list[ResidentWorker]" = []
        metrics = [{k: [] for k in _METRIC_KEYS} for _ in range(num_cells)]
        budgets_applied: list = []
        completed = 0
        if resume_state is not None:
            completed = int(resume_state.completed)
            metrics = [
                {k: list(m.get(k, [])) for k in _METRIC_KEYS}
                for m in resume_state.metrics
            ]
            budgets_applied = [
                np.asarray(b, dtype=np.float64) for b in resume_state.budgets
            ]
        last_ckpt = completed
        # Salvage bookkeeping: the recorded per-epoch budget shares of
        # *this* session, and the most recent full carry pull a rebuilt
        # worker can restart from (None = replay from slot 0).
        budget_history: "list[tuple[int, int, dict]]" = []
        base_carries: "dict | None" = None
        base_epoch = 0
        if resume_state is not None:
            base_carries = {
                c: resume_state.carries[c] for c in range(num_cells)
            }
        attempts: dict[int, int] = {}

        def rebuild(worker, exc, replay_to, epoch_data):
            """Respawn a failed worker and replay it to *replay_to*
            session epochs; re-dispatch *epoch_data* when given."""
            while True:
                if not self._note_worker_failure(attempts, worker, exc):
                    raise SolverError(
                        f"worker {worker.index} (cells {worker.cells}) "
                        f"failed permanently: {exc}"
                    ) from exc
                worker.respawn()
                history = budget_history[
                    base_epoch if base_carries is not None else 0 : replay_to
                ]
                deadline = self.timeout_seconds
                try:
                    if base_carries is not None:
                        worker.call(
                            "load",
                            {
                                "carries": {
                                    c: base_carries[c] for c in worker.cells
                                }
                            },
                            timeout=deadline,
                        )
                    if history:
                        worker.call(
                            "replay",
                            {"epochs": history},
                            timeout=(
                                None
                                if deadline is None
                                else deadline * max(1, len(history))
                            ),
                        )
                    if epoch_data is not None:
                        worker.send("epoch", epoch_data(worker))
                except WorkerFailure as next_exc:
                    exc = next_exc
                    continue
                if trace:
                    self.tracer.event(
                        "shard.worker_rebuilt",
                        {"worker": worker.index, "cells": worker.cells},
                    )
                return

        epochs: "list[tuple[int, int]]" = []
        s = completed
        while s < horizon:
            n = min(self.epoch, horizon - s)
            epochs.append((s, n))
            s += n

        try:
            for w in range(workers_n):
                cells_w = list(range(w, num_cells, workers_n))
                payload = {
                    "cells": cells_w,
                    "scenarios": {c: self.cell_scenarios[c] for c in cells_w},
                    "controller": self.controller_name,
                    "v": self.v,
                    "z": self.z,
                    "backends": {c: self.backends[c] for c in cells_w},
                    "controller_params": self.controller_params,
                    "initial_budgets": {c: float(initial[c]) for c in cells_w},
                    "compiled": compiled,
                    "chunk": chunk,
                    "trace_phases": trace,
                    "telemetry": self.registry is not None,
                    "monitors": self.monitors,
                    "shared": (
                        {c: descriptors[c] for c in cells_w}
                        if planner is not None
                        else None
                    ),
                }
                workers.append(ResidentWorker(w, cells_w, payload, ctx=ctx))
            if resume_state is not None:
                for worker in workers:
                    worker.call(
                        "load",
                        {
                            "carries": {
                                c: resume_state.carries[c]
                                for c in worker.cells
                            }
                        },
                        timeout=self.timeout_seconds,
                    )
                if planner is not None:
                    for c in range(num_cells):
                        planner.load_stream_state(c, resume_state.carries[c])
            if planner is not None and epochs:
                buffer = planner.fill(0, *epochs[0])
            else:
                buffer = None
            next_buffer = None
            for e, (start, count) in enumerate(epochs):
                budgets = self.coordinator.budgets()
                budgets_applied.append(budgets)
                shares = {c: float(budgets[c]) for c in range(num_cells)}
                budget_history.append((start, count, shares))
                attempts.clear()

                def epoch_data(worker, _start=start, _count=count,
                               _buffer=buffer, _shares=shares):
                    return {
                        "start": _start,
                        "count": _count,
                        "buffer": _buffer,
                        "budgets": {c: _shares[c] for c in worker.cells},
                    }

                for worker in workers:
                    data = epoch_data(worker)
                    if (
                        self._chaos_hang is not None
                        and not self._chaos_fired
                        and self._chaos_hang[0] == e
                        and worker is workers[self._chaos_hang[1] % len(workers)]
                    ):
                        # Chaos seam: this worker sleeps through the
                        # epoch instead of answering; only the
                        # heartbeat watchdog can catch it.  Fired once,
                        # so the salvage re-dispatch runs clean.
                        self._chaos_fired = True
                        data = dict(data, hang=True)
                    try:
                        worker.send("epoch", data)
                    except WorkerFailure as exc:
                        rebuild(worker, exc, e, epoch_data)
                # Pipelining: compile the next epoch's states into the
                # other buffer while the workers are solving this one.
                if planner is not None and e + 1 < len(epochs):
                    next_buffer = planner.fill(e + 1, *epochs[e + 1])
                if (
                    self._chaos_kill is not None
                    and not self._chaos_fired
                    and self._chaos_kill[0] == e
                ):
                    self._chaos_fired = True
                    victim = workers[self._chaos_kill[1] % len(workers)]
                    if victim.process is not None:
                        victim.process.kill()
                spends = np.zeros(num_cells)
                for worker in workers:
                    while True:
                        try:
                            reply = worker.recv(self.timeout_seconds)
                            break
                        except WorkerFailure as exc:
                            rebuild(worker, exc, e, epoch_data)
                    for c, out in reply["cells"].items():
                        for key in _METRIC_KEYS:
                            metrics[c][key].extend(out["metrics"][key])
                        spends[c] = out["spend"]
                        for data in out.get("alerts", ()):
                            if trace:
                                self.tracer.event("alert", data)
                    if self.registry is not None:
                        self.registry.merge_snapshot(
                            reply.get("telemetry"), generation=start + 1
                        )
                buffer = next_buffer
                completed = start + count
                session_done = e + 1
                new_budgets = self.coordinator.update(spends)
                self._publish_epoch(completed, new_budgets)
                if trace:
                    self.tracer.event(
                        "shard.epoch",
                        {
                            "completed": completed,
                            "spends": spends.tolist(),
                            "budgets": new_budgets.tolist(),
                        },
                    )
                pull_due = (
                    self.carry_every is not None
                    and session_done % self.carry_every == 0
                    and completed < horizon
                )
                ckpt_due = (
                    ckpt is not None and completed - last_ckpt >= ckpt.every
                )
                if pull_due or ckpt_due:
                    carries: dict = {}
                    for worker in workers:
                        while True:
                            try:
                                carries.update(
                                    worker.call(
                                        "pull", timeout=self.timeout_seconds
                                    )
                                )
                                break
                            except WorkerFailure as exc:
                                rebuild(worker, exc, session_done, None)
                    if planner is not None:
                        # The parent owns the live state stream in
                        # shared mode; patch this epoch's boundary
                        # snapshot into the carries so a restore
                        # re-creates both sides consistently.
                        for c in range(num_cells):
                            carries[c] = dict(carries[c])
                            carries[c].update(planner.stream_state(c, e))
                    base_carries = carries
                    base_epoch = session_done
                    if ckpt_due:
                        self._write_shard_checkpoint(
                            ckpt.path,
                            horizon,
                            completed,
                            carries,
                            metrics,
                            budgets_applied,
                        )
                        last_ckpt = completed
            finish_out: dict = {}
            for worker in workers:
                while True:
                    try:
                        reply = worker.call(
                            "finish", timeout=self.timeout_seconds
                        )
                        break
                    except WorkerFailure as exc:
                        rebuild(worker, exc, len(budget_history), None)
                finish_out.update(reply["cells"])
                if self.registry is not None:
                    self.registry.merge_snapshot(
                        reply.get("telemetry"), generation=horizon + 1
                    )
            if trace and isinstance(self.tracer, Probe):
                for c in range(num_cells):
                    state = finish_out.get(c, {}).get("phase_state")
                    if state is not None:
                        self.tracer.merge_phase_state(state, order=(0, c))
            if self.monitors:
                self._health = self._assemble_health_resident(finish_out)
        finally:
            for worker in workers:
                worker.stop()
            if planner is not None:
                planner.close()
        return metrics, budgets_applied

    def _note_worker_failure(
        self, attempts: dict, worker: "ResidentWorker", exc: Exception
    ) -> bool:
        attempts[worker.index] = attempts.get(worker.index, 0) + 1
        retry = attempts[worker.index] <= self.max_retries
        logger.warning(
            "resident worker %d (cells %s) failed (attempt %d/%d): %s",
            worker.index,
            worker.cells,
            attempts[worker.index],
            self.max_retries + 1,
            exc,
        )
        hung = bool(getattr(exc, "hung", False))
        if self.tracer.enabled:
            self.tracer.counter("resilience.shard_retries", 1)
            if hung:
                # The watchdog (heartbeat silence past the per-epoch
                # deadline) caught a live-but-stuck worker; distinguish
                # it from a plain death in traces and telemetry.
                self.tracer.counter("resilience.worker_hangs", 1)
                self.tracer.event(
                    "shard.worker_hung",
                    {
                        "worker": worker.index,
                        "cells": worker.cells,
                        "deadline_seconds": self.timeout_seconds,
                    },
                )
            self.tracer.event(
                "shard.retry",
                {
                    "worker": worker.index,
                    "cells": worker.cells,
                    "attempt": attempts[worker.index],
                    "error": str(exc),
                },
            )
            # Keep the partial trace whole-record durable before the
            # salvage replay (same contract as the legacy pool path).
            self.tracer.flush()
        if self.registry is not None:
            counter = self.registry.counter(
                "repro_shard_retries_total",
                "Sharded epoch jobs that failed and were retried",
            )
            for c in worker.cells:
                counter.inc(1.0, cell=c)
        return retry

    def _assemble_health_resident(self, finish_out: dict) -> HealthReport:
        statuses: list[MonitorStatus] = []
        alerts: list[Alert] = []
        for c in sorted(finish_out):
            cell = finish_out[c]
            for s in cell.get("statuses", ()):
                statuses.append(
                    MonitorStatus(
                        name=f"cell{c}/{s['name']}",
                        status=s["status"],
                        detail=s["detail"],
                        alerts=s["alerts"],
                    )
                )
            for data in cell.get("alerts", ()):
                alerts.append(
                    Alert(
                        monitor=data["monitor"],
                        severity=data["severity"],
                        message=data["message"],
                        t=data.get("t"),
                        data=dict(data.get("data", {})),
                    )
                )
        return HealthReport(statuses=tuple(statuses), alerts=tuple(alerts))

    # -- checkpoint plumbing -----------------------------------------------

    def _config_hash(self, horizon: int) -> str:
        config = {
            "seed": self.scenario.seeds.seed,
            "horizon": int(horizon),
            "budget": float(self.total_budget),
            "controller": self.controller_name,
            "devices": self.scenario.network.num_devices,
            "cells": self.plan.num_cells,
            "epoch": self.epoch,
            "coordinator": self.coordinator.mode,
        }
        return hashlib.sha256(
            json.dumps(config, sort_keys=True).encode()
        ).hexdigest()[:16]

    def _write_shard_checkpoint(
        self, path, horizon, completed, carries, metrics, budgets_applied
    ) -> None:
        ShardCheckpoint(
            config_hash=self._config_hash(horizon),
            horizon=int(horizon),
            completed=int(completed),
            coordinator=self.coordinator.state_dict(),
            carries=[carries[c] for c in range(len(self.cell_scenarios))],
            metrics=[{k: list(m[k]) for k in _METRIC_KEYS} for m in metrics],
            budgets=[list(map(float, b)) for b in budgets_applied],
        ).write(path)
        if self.tracer.enabled:
            self.tracer.counter("resilience.checkpoints", 1)
            self.tracer.event(
                "checkpoint", {"slot": int(completed), "path": str(path)}
            )
        if (
            self._halt_after_slots is not None
            and completed >= self._halt_after_slots
        ):
            raise _HaltRequested(
                f"halted after checkpoint at slot {completed}"
            )

    def _load_shard_checkpoint(self, path: Path, horizon: int) -> ShardCheckpoint:
        ck = ShardCheckpoint.load(path)
        if ck.config_hash != self._config_hash(horizon):
            raise CheckpointError(
                f"checkpoint {path} belongs to a different sharded run "
                f"(hash {ck.config_hash} != {self._config_hash(horizon)}); "
                "pass resume=False to overwrite it"
            )
        if ck.horizon != horizon:
            raise CheckpointError(
                f"checkpoint {path} was taken for horizon {ck.horizon}, "
                f"requested {horizon}"
            )
        return ck

    # -- pooled path -------------------------------------------------------

    def _run_pooled(
        self, horizon: int, *, compiled: bool, chunk: int
    ) -> "tuple[list[dict], list[np.ndarray]]":
        trace = self.tracer.enabled
        context = {
            "scenarios": self.cell_scenarios,
            "controller": self.controller_name,
            "v": self.v,
            "z": self.z,
            "backends": self.backends,
            "controller_params": self.controller_params,
            "compiled": compiled,
            "chunk": chunk,
            "trace_phases": trace,
            "telemetry": self.registry is not None,
            "monitors": self.monitors,
        }
        monitor_rollup: "dict[tuple[int, str], dict]" = {}
        collected_alerts: list[Alert] = []

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=self.processes,
                initializer=_init_shard_worker,
                initargs=(context,),
            )

        num_cells = len(self.cell_scenarios)
        metrics = [{k: [] for k in _METRIC_KEYS} for _ in range(num_cells)]
        budgets_applied: list[np.ndarray] = []
        carries: list = [None] * num_cells
        attempts: dict[int, int] = {}
        completed = 0
        pool = make_pool()
        try:
            while completed < horizon:
                count = min(self.epoch, horizon - completed)
                budgets = self.coordinator.budgets()
                budgets_applied.append(budgets)
                jobs = {
                    c: {
                        "cell": c,
                        "start": completed,
                        "count": count,
                        "budget": float(budgets[c]),
                        "carry": carries[c],
                    }
                    for c in range(num_cells)
                }
                pending = list(range(num_cells))
                spends = np.zeros(num_cells)
                attempts.clear()
                while pending:
                    futures = {
                        c: pool.submit(_run_epoch_job, jobs[c]) for c in pending
                    }
                    next_pending: list[int] = []
                    rebuild = False
                    for position, c in enumerate(pending):
                        try:
                            out = futures[c].result(
                                timeout=self.timeout_seconds
                            )
                        except (FuturesTimeout, BrokenProcessPool) as exc:
                            # The pool is poisoned; salvage the rest of
                            # this round onto a fresh one, burn one of
                            # this cell's attempts.
                            if self._note_failure(attempts, c, exc):
                                next_pending.append(c)
                            else:
                                raise SolverError(
                                    f"cell {c} failed permanently at slot "
                                    f"{completed}: {exc}"
                                ) from exc
                            next_pending.extend(pending[position + 1 :])
                            rebuild = True
                            break
                        except Exception as exc:
                            if self._note_failure(attempts, c, exc):
                                next_pending.append(c)
                            else:
                                raise SolverError(
                                    f"cell {c} failed permanently at slot "
                                    f"{completed}: {exc}"
                                ) from exc
                        else:
                            for key in _METRIC_KEYS:
                                metrics[c][key].extend(out["metrics"][key])
                            carries[c] = out["carry"]
                            spends[c] = float(
                                np.mean(out["metrics"]["cost"])
                            )
                            if trace and isinstance(self.tracer, Probe):
                                # (start_slot, cell) keeps gauge series
                                # in logical order regardless of which
                                # future completed first.
                                self.tracer.merge_phase_state(
                                    out["phase_state"],
                                    order=(completed, c),
                                )
                            if self.registry is not None:
                                # Stream this epoch's snapshot into the
                                # live registry immediately -- a scrape
                                # mid-run sees it while other cells are
                                # still computing.  generation =
                                # start_slot + 1 keeps later epochs'
                                # gauges winning over stragglers.
                                self.registry.merge_snapshot(
                                    out.get("telemetry"),
                                    generation=completed + 1,
                                )
                            if self.monitors:
                                self._fold_worker_monitors(
                                    c,
                                    out,
                                    monitor_rollup,
                                    collected_alerts,
                                )
                    if rebuild:
                        # Make the partial trace durable before the
                        # salvage retry: a parent killed while the pool
                        # rebuilds must not leave a JSONL record
                        # truncated mid-line.
                        self.tracer.flush()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = make_pool()
                        if trace:
                            self.tracer.event(
                                "shard.pool_rebuilt",
                                {"pending": len(next_pending)},
                            )
                    pending = next_pending
                completed += count
                new_budgets = self.coordinator.update(spends)
                self._publish_epoch(completed, new_budgets)
                if trace:
                    self.tracer.event(
                        "shard.epoch",
                        {
                            "completed": completed,
                            "spends": spends.tolist(),
                            "budgets": new_budgets.tolist(),
                        },
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if self.monitors:
            self._health = self._assemble_health_pooled(
                monitor_rollup, collected_alerts
            )
        return metrics, budgets_applied

    def _note_failure(self, attempts: dict, cell: int, exc: Exception) -> bool:
        attempts[cell] = attempts.get(cell, 0) + 1
        retry = attempts[cell] <= self.max_retries
        logger.warning(
            "cell %d epoch job failed (attempt %d/%d): %s",
            cell,
            attempts[cell],
            self.max_retries + 1,
            exc,
        )
        if self.tracer.enabled:
            self.tracer.counter("resilience.shard_retries", 1)
            self.tracer.event(
                "shard.retry",
                {"cell": cell, "attempt": attempts[cell], "error": str(exc)},
            )
            # Every failure path flushes streaming sinks: whether the
            # job is retried or about to raise permanently, the partial
            # trace on disk stays whole-record durable.
            self.tracer.flush()
        if self.registry is not None:
            self.registry.counter(
                "repro_shard_retries_total",
                "Sharded epoch jobs that failed and were retried",
            ).inc(1.0, cell=cell)
        return retry

    # -- telemetry / monitor plumbing --------------------------------------

    def _publish_epoch(self, completed: int, budgets: np.ndarray) -> None:
        """Parent-side epoch gauges: progress and the per-cell splits."""
        if self.registry is None:
            return
        self.registry.gauge(
            "repro_shard_completed_slots",
            "Slots completed by the sharded run so far",
        ).set(float(completed))
        budget_gauge = self.registry.gauge(
            "repro_cell_budget",
            "Per-cell budget share applied for the next epoch ($/slot)",
        )
        for c, value in enumerate(budgets):
            budget_gauge.set(float(value), cell=c)

    def _fold_worker_monitors(
        self,
        cell: int,
        out: dict,
        rollup: "dict[tuple[int, str], dict]",
        alerts: "list[Alert]",
    ) -> None:
        """Fold one epoch job's monitor output into the run's rollup.

        Worker alerts are re-emitted on the parent tracer (the
        "re-emission under sharding" contract: dashboards and JSONL
        traces attached to the parent see per-cell alerts live), and
        per-monitor statuses fold by worst severity with alert counts
        summed across epochs.
        """
        for data in out.get("alerts", ()):
            alerts.append(
                Alert(
                    monitor=data["monitor"],
                    severity=data["severity"],
                    message=data["message"],
                    t=data.get("t"),
                    data=dict(data.get("data", {})),
                )
            )
            if self.tracer.enabled:
                self.tracer.event("alert", data)
        for status in out.get("statuses", ()):
            key = (cell, status["name"])
            entry = rollup.get(key)
            if entry is None:
                rollup[key] = dict(status)
            else:
                if (
                    _STATUS_RANK.get(status["status"], 0)
                    > _STATUS_RANK.get(entry["status"], 0)
                ):
                    entry["status"] = status["status"]
                entry["alerts"] += status["alerts"]
                # Detail from the most recent epoch (jobs for one cell
                # complete in epoch order) reads as the final state.
                entry["detail"] = status["detail"]

    def _assemble_health_sequential(
        self, suites: "list[MonitorSuite | None]"
    ) -> HealthReport:
        statuses: list[MonitorStatus] = []
        alerts: list[Alert] = []
        for c, suite in enumerate(suites):
            if suite is None:
                continue
            report = suite.finish()
            statuses.extend(
                MonitorStatus(
                    name=f"cell{c}/{s.name}",
                    status=s.status,
                    detail=s.detail,
                    alerts=s.alerts,
                )
                for s in report.statuses
            )
            alerts.extend(report.alerts)
        return HealthReport(statuses=tuple(statuses), alerts=tuple(alerts))

    def _assemble_health_pooled(
        self,
        rollup: "dict[tuple[int, str], dict]",
        alerts: "list[Alert]",
    ) -> HealthReport:
        statuses = tuple(
            MonitorStatus(
                name=f"cell{cell}/{name}",
                status=entry["status"],
                detail=entry["detail"],
                alerts=entry["alerts"],
            )
            for (cell, name), entry in sorted(rollup.items())
        )
        return HealthReport(statuses=statuses, alerts=tuple(alerts))

    # -- public ------------------------------------------------------------

    def run(
        self,
        horizon: int,
        *,
        compiled_states: bool = True,
        state_chunk: int = 32,
        checkpoint: "str | Path | None" = None,
        checkpoint_every: "int | None" = None,
        resume: bool = False,
    ) -> ShardedResult:
        """Simulate *horizon* slots across every cell and merge.

        Cells advance in lockstep epochs; after each epoch the budget
        coordinator re-splits ``Cbar`` from the observed spends.  The
        pooled and sequential paths produce bit-identical trajectories
        (the pooled paths replay the same carry-state arithmetic the
        checkpoint layer proved exact).

        Args:
            checkpoint: Snapshot the run to this path at epoch
                boundaries (a :class:`~repro.sim.checkpoint.ShardCheckpoint`;
                sequential and resident runtimes only).
            checkpoint_every: Minimum slots between snapshots; defaults
                to the epoch length (one snapshot per epoch).
            resume: Continue from a matching snapshot at *checkpoint*;
                without one the run starts fresh.  Resumed trajectories
                are bit-identical to an uninterrupted run's.
        """
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        self._health = None
        self._chaos_fired = False
        pooled = self.processes is not None and self.processes > 1
        ckpt = None
        resume_state = None
        if checkpoint is not None:
            if pooled and self.runtime == "legacy":
                raise ConfigurationError(
                    "checkpointing needs the resident or sequential "
                    "sharded runtime (the legacy pool keeps no parent-"
                    "side carry between epochs)"
                )
            every = self.epoch if checkpoint_every is None else int(checkpoint_every)
            if every < 1:
                raise ConfigurationError(
                    f"checkpoint interval must be >= 1, got {checkpoint_every}"
                )
            path = Path(checkpoint)
            ckpt = _CheckpointPlan(path=path, every=every)
            if resume and path.exists():
                resume_state = self._load_shard_checkpoint(path, horizon)
        if pooled and self.runtime == "resident":
            metrics, budgets = self._run_resident(
                horizon,
                compiled=compiled_states,
                chunk=state_chunk,
                ckpt=ckpt,
                resume_state=resume_state,
            )
        elif pooled:
            metrics, budgets = self._run_pooled(
                horizon, compiled=compiled_states, chunk=state_chunk
            )
        else:
            metrics, budgets = self._run_sequential(
                horizon,
                compiled=compiled_states,
                chunk=state_chunk,
                ckpt=ckpt,
                resume_state=resume_state,
            )
        merged = merge_cell_metrics(metrics, self.total_budget)
        cell_summaries = [
            SimulationResult(
                **{k: np.asarray(m[k], dtype=np.float64) for k in _METRIC_KEYS},
                budget=float(b),
            ).summary()
            for m, b in zip(metrics, self.coordinator.budgets())
        ]
        if self._health is not None:
            merged.health = self._health
        return ShardedResult(
            merged=merged,
            cells=cell_summaries,
            budgets=np.array(budgets) if budgets else None,
            plan=self.plan,
            health=self._health,
        )


def run_sharded(
    scenario: Scenario,
    *,
    horizon: int,
    cells: "CellPlan | int",
    controller: str = "dpp",
    v: float = 100.0,
    z: "int | None" = None,
    budget: "float | None" = None,
    epoch: int = 24,
    coordinator: str = "proportional",
    floor_fraction: float = 0.1,
    smoothing: float = 0.5,
    engine_backend: "str | list | tuple | None" = None,
    processes: "int | None" = None,
    runtime: str = "resident",
    shared_states: "bool | None" = None,
    carry_every: "int | None" = None,
    timeout_seconds: "float | None" = None,
    max_retries: int = 2,
    tracer: "Tracer | None" = None,
    registry: "MetricsRegistry | None" = None,
    monitors: bool = False,
    compiled_states: bool = True,
    state_chunk: int = 32,
    checkpoint: "str | Path | None" = None,
    checkpoint_every: "int | None" = None,
    resume: bool = False,
    **controller_params: object,
) -> ShardedResult:
    """One-call sharded run: partition, coordinate, execute, merge.

    See :class:`ShardedController` for the knobs.  Returns the
    :class:`ShardedResult`; ``result.merged`` is the drop-in
    cross-cell :class:`~repro.sim.results.SimulationResult`.
    """
    sharded = ShardedController(
        scenario,
        cells,
        controller=controller,
        v=v,
        z=z,
        budget=budget,
        epoch=epoch,
        coordinator=coordinator,
        floor_fraction=floor_fraction,
        smoothing=smoothing,
        engine_backend=engine_backend,
        processes=processes,
        runtime=runtime,
        shared_states=shared_states,
        carry_every=carry_every,
        timeout_seconds=timeout_seconds,
        max_retries=max_retries,
        tracer=tracer,
        registry=registry,
        monitors=monitors,
        **controller_params,
    )
    return sharded.run(
        horizon,
        compiled_states=compiled_states,
        state_chunk=state_chunk,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
    )
