"""Generic numerical solvers used as substrates by the core algorithms.

This subpackage is deliberately free of any MEC-specific concepts so the
solvers can be tested (and reused) in isolation:

* :mod:`repro.solvers.scalar` -- bounded one-dimensional convex
  minimisation (golden-section search with an optional Newton fast path).
  This is our substitute for the CVX solver the paper uses for P2-B.
* :mod:`repro.solvers.potential_game` -- a generic best-response-dynamics
  engine over finite games; CGBA (Algorithm 3) is an instance of it.
* :mod:`repro.solvers.assignment` -- helpers for enumerating and scoring
  discrete assignment problems, shared by the branch-and-bound baseline.
"""

from repro.solvers.scalar import (
    GoldenSectionResult,
    minimize_convex_scalar,
    minimize_scalar_newton,
)
from repro.solvers.potential_game import (
    BestResponseResult,
    EngineStats,
    FiniteGame,
    best_response_dynamics,
)
from repro.solvers.fast_engine import (
    FastBestResponseEngine,
    fast_best_response_dynamics,
)
from repro.solvers.assignment import (
    QuadraticCongestionProblem,
    congestion_free_lower_bound,
)
from repro.solvers.relaxation import RelaxationResult, solve_fractional_relaxation

__all__ = [
    "GoldenSectionResult",
    "minimize_convex_scalar",
    "minimize_scalar_newton",
    "BestResponseResult",
    "EngineStats",
    "FiniteGame",
    "best_response_dynamics",
    "FastBestResponseEngine",
    "fast_best_response_dynamics",
    "QuadraticCongestionProblem",
    "congestion_free_lower_bound",
    "RelaxationResult",
    "solve_fractional_relaxation",
]
