"""Helpers for discrete assignment problems over congested resources.

Shared by the branch-and-bound exact baseline and by the lower-bound
computations.  The abstraction here is deliberately small: an assignment
problem maps each of ``I`` items to one option out of a per-item feasible
list, and the objective is a sum over resources ``r`` of
``m_r * (sum of weights of items on r) ** 2`` -- exactly the structure of
the paper's P1/P2-A after Lemma 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.types import FloatArray


@dataclass(frozen=True)
class QuadraticCongestionProblem:
    """A min-cost assignment problem with quadratic congestion costs.

    The objective of assigning item ``i`` to option ``o`` is captured by
    the set of resources the option uses and the item's weight on each.

    Attributes:
        num_items: Number of items (mobile devices).
        num_resources: Total number of congestible resources.
        resource_weights: Shape ``(num_resources,)`` -- the ``m_r`` factors.
        options: ``options[i]`` is the feasible option list for item ``i``;
            each option is an integer array of resource indices.
        item_weights: ``item_weights[i][j]`` is an array, aligned with
            ``options[i][j]``, of the item's load ``p_{i,r}`` on each
            resource the option uses.
    """

    num_items: int
    num_resources: int
    resource_weights: FloatArray
    options: list[list[np.ndarray]]
    item_weights: list[list[np.ndarray]]

    def __post_init__(self) -> None:
        if len(self.options) != self.num_items:
            raise ValueError("options must have one entry per item")
        if len(self.item_weights) != self.num_items:
            raise ValueError("item_weights must have one entry per item")
        for i in range(self.num_items):
            if len(self.options[i]) == 0:
                raise ValueError(f"item {i} has no feasible option")
            if len(self.options[i]) != len(self.item_weights[i]):
                raise ValueError(f"item {i}: options/item_weights mismatch")
        # Vectorised per-item views for the branch-and-bound hot path:
        # marginal(i, j, loads) = static[i][j] + 2 * coef[i][j] . loads[res[i][j]].
        res_stacks: list[np.ndarray] = []
        coef_stacks: list[np.ndarray] = []
        static_stacks: list[np.ndarray] = []
        for i in range(self.num_items):
            res = np.stack(self.options[i])  # (n_opts, uses)
            wts = np.stack(self.item_weights[i])
            m = self.resource_weights[res]
            res_stacks.append(res)
            coef_stacks.append(m * wts)
            static_stacks.append(np.sum(m * wts * wts, axis=1))
        object.__setattr__(self, "_res_stacks", res_stacks)
        object.__setattr__(self, "_coef_stacks", coef_stacks)
        object.__setattr__(self, "_static_stacks", static_stacks)

    def marginal_costs(self, item: int, loads: FloatArray) -> FloatArray:
        """Marginal cost of every option of *item* under *loads*, vectorised."""
        res: np.ndarray = self._res_stacks[item]  # type: ignore[attr-defined]
        coef: np.ndarray = self._coef_stacks[item]  # type: ignore[attr-defined]
        static: np.ndarray = self._static_stacks[item]  # type: ignore[attr-defined]
        return static + 2.0 * np.sum(coef * loads[res], axis=1)

    def total_cost(self, choice: Sequence[int]) -> float:
        """Objective value of a full assignment ``choice[i] -> option index``."""
        loads = np.zeros(self.num_resources)
        for i, j in enumerate(choice):
            loads[self.options[i][j]] += self.item_weights[i][j]
        return float(self.resource_weights @ (loads * loads))

    def marginal_cost(self, item: int, option: int, loads: FloatArray) -> float:
        """Increase of the objective if *item* takes *option* given *loads*.

        Adding weight ``p`` to a resource with load ``L`` increases the
        quadratic term by ``m * (2 L p + p^2)``.  This is monotone in
        ``L``, which makes per-item minima over options admissible lower
        bounds in branch-and-bound.
        """
        res = self.options[item][option]
        wts = self.item_weights[item][option]
        m = self.resource_weights[res]
        load = loads[res]
        return float(np.sum(m * (2.0 * load * wts + wts * wts)))

    def cheapest_option(self, item: int, loads: FloatArray) -> tuple[int, float]:
        """Option of *item* with the smallest marginal cost under *loads*."""
        costs = self.marginal_costs(item, loads)
        j = int(np.argmin(costs))
        return j, float(costs[j])

    def apply(self, item: int, option: int, loads: FloatArray) -> None:
        """Add *item*'s weights for *option* onto *loads* in place."""
        loads[self.options[item][option]] += self.item_weights[item][option]

    def remove(self, item: int, option: int, loads: FloatArray) -> None:
        """Remove *item*'s weights for *option* from *loads* in place."""
        loads[self.options[item][option]] -= self.item_weights[item][option]


def congestion_free_lower_bound(problem: QuadraticCongestionProblem) -> float:
    """Lower bound that ignores congestion between items.

    Each item is priced as if alone on empty resources, i.e. by
    ``min_o sum_r m_r p_{i,r}^2``.  Because cross terms ``2 m_r p_i p_j``
    are non-negative, the sum of these minima never exceeds the optimum.
    """
    zero = np.zeros(problem.num_resources)
    total = 0.0
    for i in range(problem.num_items):
        _, cost = problem.cheapest_option(i, zero)
        total += cost
    return total
