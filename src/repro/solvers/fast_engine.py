"""The vectorized, incremental best-response engine.

:func:`repro.solvers.potential_game.best_response_dynamics` recomputes
*every* player's best response in a Python loop after *every* unilateral
move -- O(I * |Z|) scalar work per iteration even though a move touches
at most four resources.  This engine removes both costs for games that
expose the batch interface below:

* **Vectorized sweeps** -- all candidate strategies of all (relevant)
  players are scored in one numpy pass over concatenated index arrays
  (``game.batch_best_responses``), replacing the per-player loop.
* **Dirty-player tracking** -- after a move, only players whose strategy
  set touches one of the (at most four) changed resources can see a
  different gap (``game.affected_players``); everyone else's cached gap
  and best response are still exact, so the per-iteration cost drops
  from O(I * |Z|) to O(affected).

The engine replays the reference dynamics *exactly*: the batch evaluator
is required to be numerically identical to the scalar one (same IEEE
operation order, same first-minimum tie break), cached gaps of untouched
players equal what a fresh sweep would produce (their inputs are
untouched memory), and the selection rules consume randomness the same
way.  The equivalence tests assert bit-identical final assignments.

:class:`OffloadingCongestionGame` is the intended instance; any
:class:`~repro.solvers.potential_game.FiniteGame` with the three extra
methods works.
"""

from __future__ import annotations

import time
from typing import Protocol

import numpy as np

from repro.exceptions import ConvergenceError
from repro.solvers.potential_game import (
    BestResponseResult,
    EngineStats,
    FiniteGame,
)
from repro.types import FloatArray, Rng


class BatchGame(Protocol):
    """The extra interface the fast engine needs on top of FiniteGame."""

    @property
    def num_players(self) -> int: ...

    def batch_best_responses(
        self, players: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, FloatArray, FloatArray]:
        """``(best_bs, best_server, best_cost, current_cost)`` per player."""

    def affected_players(
        self, old: tuple[int, int], new: tuple[int, int]
    ) -> np.ndarray:
        """Players whose gap can change after a move ``old -> new``."""

    def candidate_count(self, players: np.ndarray | None = None) -> int:
        """Total candidate strategies across *players* (for accounting)."""


def supports_batch(game: FiniteGame) -> bool:
    """Whether *game* implements the :class:`BatchGame` interface."""
    return all(
        callable(getattr(game, name, None))
        for name in ("batch_best_responses", "affected_players", "candidate_count")
    )


class FastBestResponseEngine:
    """Incremental best-response dynamics over a :class:`BatchGame`.

    The engine owns per-player caches of the improvement gap and the
    cached best strategy; :meth:`step` applies one move and refreshes
    only the dirty players.  Exposed as a class (rather than only the
    :func:`fast_best_response_dynamics` wrapper) so property tests can
    drive it move by move and audit the caches.
    """

    def __init__(self, game: BatchGame, *, slack: float = 0.0) -> None:
        if not 0.0 <= slack < 1.0:
            raise ValueError(f"slack must lie in [0, 1), got {slack}")
        self.game = game
        self.slack = slack
        self.stats = EngineStats()
        n = game.num_players
        # Games exposing the deferred-argmin refresh (batch_gap_costs +
        # best_strategy_for) skip materialising every player's best
        # strategy per sweep; only the selected mover's is resolved.
        self._lazy = (
            callable(getattr(game, "batch_gap_costs", None))
            and callable(getattr(game, "best_strategy_for", None))
            and getattr(game, "supports_lazy_gaps", True)
        )
        # Games whose gap refresh is a dense full pass (the decomposed
        # product-form evaluator) gain nothing from dirty-player
        # tracking; skip the affected-set computation entirely.
        self._full_refresh = self._lazy and getattr(
            game, "prefers_full_refresh", False
        )
        if not self._lazy:
            self._best_bs = np.zeros(n, dtype=np.int64)
            self._best_server = np.zeros(n, dtype=np.int64)
        #: Improvement gaps ``current - best``; ``-inf`` marks players
        #: failing the eligibility test ``(1 - slack) * current > best``.
        self.gaps = np.full(n, -np.inf)
        self._inelig = np.empty(n, dtype=bool)
        # Full-sweep accounting constants, hoisted out of _refresh.
        self._n = n
        self._all_candidates = game.candidate_count(None)
        self._rr_cursor = 0
        started = time.perf_counter()
        self._refresh(None)
        self.stats.setup_seconds = time.perf_counter() - started

    def _refresh(self, players: np.ndarray | None) -> None:
        """Recompute gaps and cached best responses for *players*."""
        if self._lazy:
            best, current = self.game.batch_gap_costs(players)
        else:
            bs, server, best, current = self.game.batch_best_responses(players)
        self.stats.sweeps += 1
        if players is None and self.slack == 0.0:
            # Fused full-array path: for slack 0 the eligibility test
            # ``(1 - 0) * current > best`` is ``current > best``, which
            # in IEEE doubles holds iff ``current - best > 0`` -- so the
            # subtraction doubles as the test, in place, no temporaries.
            gaps = self.gaps
            np.subtract(current, best, out=gaps)
            np.less_equal(gaps, 0.0, out=self._inelig)
            np.copyto(gaps, -np.inf, where=self._inelig)
            if not self._lazy:
                self._best_bs[:] = bs
                self._best_server[:] = server
            self.stats.gap_recomputations += self._n
            self.stats.candidate_evaluations += self._all_candidates
            return
        eligible = (1.0 - self.slack) * current > best
        gaps = np.where(eligible, current - best, -np.inf)
        if players is None:
            if not self._lazy:
                self._best_bs[:] = bs
                self._best_server[:] = server
            self.gaps[:] = gaps
            self.stats.gap_recomputations += self.game.num_players
        else:
            if not self._lazy:
                self._best_bs[players] = bs
                self._best_server[players] = server
            self.gaps[players] = gaps
            self.stats.gap_recomputations += int(players.size)
        self.stats.candidate_evaluations += self.game.candidate_count(players)

    def eligible_players(self) -> np.ndarray:
        """Players currently passing the improvement test."""
        return np.flatnonzero(self.gaps > -np.inf)

    def select(self, rule: str, rng: Rng | None) -> int | None:
        """Pick the next mover under *rule*, or ``None`` at equilibrium.

        Implements the same tie-breaking (and randomness consumption) as
        the reference engine so trajectories coincide.
        """
        if rule == "max_gap":
            # Ineligible players carry -inf, so the global first-maximum
            # is the first-maximum over the eligible subset whenever one
            # exists -- same pick, no index materialisation.
            player = int(self.gaps.argmax())
            if self.gaps[player] == -np.inf:
                return None
            return player
        eligible = self.eligible_players()
        if eligible.size == 0:
            return None
        if rule == "random":
            assert rng is not None
            return int(rng.choice(eligible))
        # round_robin: first eligible player at or after the cursor.
        ordered = np.concatenate([eligible[eligible >= self._rr_cursor], eligible])
        player = int(ordered[0])
        self._rr_cursor = (player + 1) % self.game.num_players
        return player

    def step(self, player: int) -> None:
        """Move *player* to its cached best response and refresh caches."""
        if self._lazy:
            new = self.game.best_strategy_for(player)
        else:
            new = (int(self._best_bs[player]), int(self._best_server[player]))
        old = None if self._full_refresh else self.game.strategy_of(player)
        started = time.perf_counter()
        self.game.move(player, new)
        self.stats.moves += 1
        self.stats.move_seconds += time.perf_counter() - started
        started = time.perf_counter()
        if self._full_refresh:
            self._refresh(None)
        else:
            affected = self.game.affected_players(old, new)
            # When the move touches every player anyway, the dense
            # full-array refresh is cheaper than the subset gather; gaps
            # and every stats counter come out identical either way.
            self._refresh(
                None if affected.size == self.game.num_players else affected
            )
        self.stats.eval_seconds += time.perf_counter() - started

    def run(
        self,
        *,
        max_iter: int = 100_000,
        rng: Rng | None = None,
        selection: str = "max_gap",
        record_history: bool = False,
    ) -> BestResponseResult:
        """Run to the slack-equilibrium; mirrors the reference engine."""
        game = self.game
        history: list[float] = []
        if record_history:
            history.append(game.total_cost())
        if selection == "max_gap" and self._full_refresh and not record_history:
            # A kernel backend with a fused loop (the jit backend's
            # native run_dynamics) replaces the whole Python iteration:
            # same argmax pick, same move, same full refresh, same
            # final state -- the stats are reconstructed from the move
            # count (one sweep, n gap recomputations, and the full
            # candidate count per move, exactly what _refresh(None)
            # would have accumulated).
            kernels = getattr(game, "kernels", None)
            if (
                kernels is not None
                and kernels.run_dynamics is not None
                and callable(getattr(game, "kernel_state", None))
            ):
                stats = self.stats
                started = time.perf_counter()
                moves, converged = kernels.run_dynamics(
                    game.kernel_state(), self.gaps, self.slack, max_iter
                )
                stats.eval_seconds += time.perf_counter() - started
                stats.moves += moves
                stats.sweeps += moves
                stats.gap_recomputations += moves * self._n
                stats.candidate_evaluations += moves * self._all_candidates
                if converged:
                    return BestResponseResult(
                        iterations=moves,
                        converged=True,
                        total_cost=game.total_cost(),
                        cost_history=history,
                        stats=stats,
                    )
                raise ConvergenceError(
                    f"best-response dynamics did not converge within "
                    f"{max_iter} moves",
                    best_so_far=BestResponseResult(
                        iterations=max_iter,
                        converged=False,
                        total_cost=game.total_cost(),
                        cost_history=history,
                        stats=stats,
                    ),
                )
            # The hot configuration (CGBA under the decomposed
            # evaluator): inline select + step with everything bound to
            # locals.  Same argmax pick, same move, same full refresh,
            # same stats -- only the per-iteration attribute lookups and
            # method dispatches are gone.
            gaps = self.gaps
            perf = time.perf_counter
            stats = self.stats
            refresh = self._refresh
            for iteration in range(max_iter):
                player = gaps.argmax()
                if gaps[player] == -np.inf:
                    return BestResponseResult(
                        iterations=iteration,
                        converged=True,
                        total_cost=game.total_cost(),
                        cost_history=history,
                        stats=stats,
                    )
                started = perf()
                game.move(player, game.best_strategy_for(player))
                stats.moves += 1
                stats.move_seconds += perf() - started
                started = perf()
                refresh(None)
                stats.eval_seconds += perf() - started
            raise ConvergenceError(
                f"best-response dynamics did not converge within {max_iter} moves",
                best_so_far=BestResponseResult(
                    iterations=max_iter,
                    converged=False,
                    total_cost=game.total_cost(),
                    cost_history=history,
                    stats=stats,
                ),
            )
        for iteration in range(max_iter):
            player = self.select(selection, rng)
            if player is None:
                return BestResponseResult(
                    iterations=iteration,
                    converged=True,
                    total_cost=history[-1] if history else game.total_cost(),
                    cost_history=history,
                    stats=self.stats,
                )
            self.step(player)
            if record_history:
                history.append(game.total_cost())
        raise ConvergenceError(
            f"best-response dynamics did not converge within {max_iter} moves",
            best_so_far=BestResponseResult(
                iterations=max_iter,
                converged=False,
                total_cost=history[-1] if history else game.total_cost(),
                cost_history=history,
                stats=self.stats,
            ),
        )


def fast_best_response_dynamics(
    game: BatchGame,
    *,
    slack: float = 0.0,
    max_iter: int = 100_000,
    rng: Rng | None = None,
    selection: str = "max_gap",
    record_history: bool = False,
) -> BestResponseResult:
    """Drop-in replacement for :func:`best_response_dynamics`.

    Same contract and semantics as the reference engine (identical move
    sequence, final profile, and convergence behaviour), with the
    per-iteration work reduced to one vectorized pass over the players
    affected by the previous move.

    Raises:
        ConvergenceError: If ``max_iter`` moves did not reach the
            stopping condition.
        ValueError: On an unknown ``selection`` rule, a missing ``rng``
            for ``selection="random"``, or a ``slack`` outside [0, 1).
    """
    if selection not in ("max_gap", "round_robin", "random"):
        raise ValueError(f"unknown selection rule: {selection!r}")
    if selection == "random" and rng is None:
        raise ValueError("selection='random' requires an rng")
    engine = FastBestResponseEngine(game, slack=slack)
    return engine.run(
        max_iter=max_iter,
        rng=rng,
        selection=selection,
        record_history=record_history,
    )
