"""Generic best-response dynamics over finite games.

The paper's CGBA (Algorithm 3) is best-response dynamics on a weighted
congestion game with a specific player-selection rule (the player with
the largest absolute improvement moves) and a relative stopping slack
``lambda``.  This module implements that engine over an abstract game
interface so the dynamics can be property-tested on small synthetic games
independently of the MEC model.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.exceptions import ConvergenceError
from repro.types import Rng


class FiniteGame(abc.ABC):
    """A finite game with a mutable current strategy profile.

    Implementations keep the profile (and any incremental bookkeeping,
    e.g. congestion-game resource loads) internally; the engine only
    queries costs and applies moves.
    """

    @property
    @abc.abstractmethod
    def num_players(self) -> int:
        """Number of players in the game."""

    @abc.abstractmethod
    def player_cost(self, player: int) -> float:
        """Cost of *player* under the current profile."""

    @abc.abstractmethod
    def best_response(self, player: int) -> tuple[Hashable, float]:
        """Best strategy for *player* holding all other players fixed.

        Returns:
            ``(strategy, cost)`` -- the minimising strategy and the cost the
            player would incur after unilaterally deviating to it.
        """

    @abc.abstractmethod
    def move(self, player: int, strategy: Hashable) -> None:
        """Switch *player* to *strategy*, updating internal bookkeeping."""

    @abc.abstractmethod
    def strategy_of(self, player: int) -> Hashable:
        """Current strategy of *player*."""

    def total_cost(self) -> float:
        """Sum of all players' costs under the current profile.

        Subclasses with resource-level bookkeeping should override this
        with their cheaper closed form (e.g. the congestion game's
        O(K+N) load sum); this generic fallback is O(I) player-cost
        evaluations.
        """
        return float(sum(self.player_cost(i) for i in range(self.num_players)))

    def num_strategies(self, player: int) -> int | None:
        """Size of *player*'s strategy set, when cheaply known.

        Engines use this for work accounting (candidate evaluations per
        best-response call).  ``None`` (the default) means unknown.
        """
        return None


@dataclass
class EngineStats:
    """Work counters for one best-response-dynamics run.

    The point of these is that benchmarks can report *work done*, not
    just wall-clock: a faster engine should show fewer gap
    recomputations and candidate evaluations for the same move sequence.

    Attributes:
        moves: Unilateral moves applied (same as the result's
            ``iterations``).
        sweeps: Gap-refresh passes performed (one per applied move plus
            the initial full sweep); both engines count them the same
            way, so sweep counts are comparable across engines.
        gap_recomputations: Player best-response evaluations performed.
            The naive engine recomputes every player each iteration
            (``I * (moves + 1)`` in total); the incremental engine only
            the players affected by the previous move.
        candidate_evaluations: Total candidate strategies scored across
            all gap recomputations (``sum |Z_i|`` over recomputed
            players); 0 when the game cannot report strategy-set sizes.
        setup_seconds: Wall-clock spent building engine state (initial
            full gap sweep included).
        eval_seconds: Wall-clock spent recomputing gaps/best responses.
        move_seconds: Wall-clock spent selecting movers and applying
            moves (including history recording).
    """

    moves: int = 0
    sweeps: int = 0
    gap_recomputations: int = 0
    candidate_evaluations: int = 0
    setup_seconds: float = 0.0
    eval_seconds: float = 0.0
    move_seconds: float = 0.0

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Accumulate *other* into self (for multi-round aggregation)."""
        self.moves += other.moves
        self.sweeps += other.sweeps
        self.gap_recomputations += other.gap_recomputations
        self.candidate_evaluations += other.candidate_evaluations
        self.setup_seconds += other.setup_seconds
        self.eval_seconds += other.eval_seconds
        self.move_seconds += other.move_seconds
        return self

    def to_dict(self) -> dict[str, float]:
        """Plain-dict view for JSON reports and trace sinks."""
        return {
            "moves": self.moves,
            "sweeps": self.sweeps,
            "gap_recomputations": self.gap_recomputations,
            "candidate_evaluations": self.candidate_evaluations,
            "setup_seconds": self.setup_seconds,
            "eval_seconds": self.eval_seconds,
            "move_seconds": self.move_seconds,
        }


@dataclass
class BestResponseResult:
    """Outcome of :func:`best_response_dynamics`.

    Attributes:
        iterations: Number of unilateral moves performed.
        converged: ``True`` when no player passed the improvement test.
        total_cost: Total cost of the final profile.
        cost_history: Total cost after each move (index 0 is the initial
            profile), useful for convergence plots (paper Fig. 6).
        stats: Work counters for the run, when the engine collected them.
    """

    iterations: int
    converged: bool
    total_cost: float
    cost_history: list[float] = field(default_factory=list)
    stats: EngineStats | None = None


def _improvement_gaps(game: FiniteGame, slack: float) -> tuple[np.ndarray, list]:
    """Return per-player improvement gaps and cached best responses.

    A player is eligible to move when ``(1 - slack) * current > best``;
    the gap reported is ``current - best`` (Algorithm 3, line 3).
    """
    n = game.num_players
    gaps = np.full(n, -np.inf)
    responses: list = [None] * n
    for i in range(n):
        current = game.player_cost(i)
        strategy, best = game.best_response(i)
        responses[i] = strategy
        if (1.0 - slack) * current > best:
            gaps[i] = current - best
    return gaps, responses


def best_response_dynamics(
    game: FiniteGame,
    *,
    slack: float = 0.0,
    max_iter: int = 100_000,
    rng: Rng | None = None,
    selection: str = "max_gap",
    record_history: bool = False,
) -> BestResponseResult:
    """Run best-response dynamics until the ``slack``-equilibrium test holds.

    Args:
        game: The game; its current profile is the starting point and is
            mutated in place.
        slack: The paper's ``lambda``: stop once no player can improve its
            cost by more than the relative factor ``1 / (1 - slack)``.
            ``slack = 0`` demands an exact Nash equilibrium (CGBA(0)).
        max_iter: Safety cap on the number of moves.
        rng: Random generator, required for ``selection="random"``.
        selection: ``"max_gap"`` (Algorithm 3: the player with the largest
            absolute improvement moves), ``"round_robin"``, or ``"random"``.
        record_history: Record the total cost after every move.

    Returns:
        A :class:`BestResponseResult`.

    Raises:
        ConvergenceError: If ``max_iter`` moves did not reach the stopping
            condition.  For exact potential games with ``slack >= 0`` this
            only happens when ``max_iter`` is too small, since every move
            strictly decreases the potential.
        ValueError: On an unknown ``selection`` rule.
    """
    if selection not in ("max_gap", "round_robin", "random"):
        raise ValueError(f"unknown selection rule: {selection!r}")
    if selection == "random" and rng is None:
        raise ValueError("selection='random' requires an rng")
    if not 0.0 <= slack < 1.0:
        raise ValueError(f"slack must lie in [0, 1), got {slack}")

    history: list[float] = []
    if record_history:
        history.append(game.total_cost())
    stats = EngineStats()
    # Strategy sets are static, so the per-sweep candidate count is too.
    per_sweep_candidates = 0
    for i in range(game.num_players):
        size = game.num_strategies(i)
        if size is None:
            per_sweep_candidates = 0
            break
        per_sweep_candidates += size

    rr_cursor = 0
    for iteration in range(max_iter):
        started = time.perf_counter()
        gaps, responses = _improvement_gaps(game, slack)
        stats.eval_seconds += time.perf_counter() - started
        stats.sweeps += 1
        stats.gap_recomputations += game.num_players
        stats.candidate_evaluations += per_sweep_candidates
        eligible = np.flatnonzero(gaps > -np.inf)
        if eligible.size == 0:
            # history[-1] already holds the cost of the final profile, so
            # don't pay for a second total_cost() on the convergence path.
            final = history[-1] if history else game.total_cost()
            return BestResponseResult(
                iterations=iteration,
                converged=True,
                total_cost=final,
                cost_history=history,
                stats=stats,
            )
        started = time.perf_counter()
        if selection == "max_gap":
            player = int(eligible[np.argmax(gaps[eligible])])
        elif selection == "random":
            assert rng is not None
            player = int(rng.choice(eligible))
        else:  # round_robin: first eligible player at or after the cursor
            ordered = np.concatenate([eligible[eligible >= rr_cursor], eligible])
            player = int(ordered[0])
            rr_cursor = (player + 1) % game.num_players
        game.move(player, responses[player])
        stats.moves += 1
        if record_history:
            history.append(game.total_cost())
        stats.move_seconds += time.perf_counter() - started

    raise ConvergenceError(
        f"best-response dynamics did not converge within {max_iter} moves",
        best_so_far=BestResponseResult(
            iterations=max_iter,
            converged=False,
            total_cost=history[-1] if history else game.total_cost(),
            cost_history=history,
            stats=stats,
        ),
    )
