"""Frank-Wolfe solver for the continuous relaxation of P2-A.

Relaxing the binary selections to per-device probability vectors turns
P2-A into a convex QP over a product of simplices:

    min_x  sum_r m_r (sum_{i,j} x_{ij} w_{ijr})^2
    s.t.   x_i in simplex(options of i).

Its optimum lower-bounds the integer optimum, and the Frank-Wolfe
duality gap certifies it: at any iterate ``x`` with gradient ``g`` and
linear-minimiser ``s``, convexity gives

    f(x*) >= f(x) - g . (x - s),

so ``f(x) - gap`` is a *certified* lower bound on the relaxation (hence
on P2-A's optimum) even before convergence.  Exact line search is
closed-form because the objective is quadratic along any segment.

This bound is how the benchmarks report optimality ratios at paper-scale
instance sizes (80-120 devices) where exact branch-and-bound is out of
reach -- the role Gurobi's bound plays in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SolverError
from repro.solvers.assignment import QuadraticCongestionProblem
from repro.types import FloatArray


@dataclass(frozen=True)
class RelaxationResult:
    """Outcome of the Frank-Wolfe relaxation solve.

    Attributes:
        value: Objective of the final fractional iterate (an upper bound
            on the relaxation optimum).
        lower_bound: Best certified lower bound ``max_t f(x_t) - gap_t``
            on the relaxation optimum -- and therefore on P2-A's integer
            optimum.
        gap: Final duality gap.
        iterations: Frank-Wolfe iterations performed.
    """

    value: float
    lower_bound: float
    gap: float
    iterations: int


def _loads_of(
    problem: QuadraticCongestionProblem, x: list[FloatArray]
) -> FloatArray:
    """Resource loads induced by fractional assignment *x*."""
    loads = np.zeros(problem.num_resources)
    for i in range(problem.num_items):
        res: np.ndarray = problem._res_stacks[i]  # type: ignore[attr-defined]
        wts = np.stack(problem.item_weights[i])
        np.add.at(loads, res, x[i][:, None] * wts)
    return loads


def solve_fractional_relaxation(
    problem: QuadraticCongestionProblem,
    *,
    max_iter: int = 500,
    gap_tol: float = 1e-8,
) -> RelaxationResult:
    """Run Frank-Wolfe on the relaxed P2-A.

    Args:
        problem: The congestion assignment problem.
        max_iter: Iteration cap.
        gap_tol: Stop once the duality gap falls below
            ``gap_tol * max(1, f(x))``.

    Returns:
        A :class:`RelaxationResult` whose ``lower_bound`` is always a
        valid bound regardless of convergence.
    """
    if max_iter <= 0:
        raise SolverError("max_iter must be positive")
    num_items = problem.num_items
    weights = problem.resource_weights

    # Per-item cached stacks (built by the problem's __post_init__).
    res_stacks: list[np.ndarray] = problem._res_stacks  # type: ignore[attr-defined]
    wt_stacks = [np.stack(problem.item_weights[i]) for i in range(num_items)]

    # Start from the uniform fractional assignment.
    x = [
        np.full(len(problem.options[i]), 1.0 / len(problem.options[i]))
        for i in range(num_items)
    ]
    loads = _loads_of(problem, x)
    value = float(weights @ (loads * loads))
    best_lower = -np.inf
    gap = np.inf

    for iteration in range(1, max_iter + 1):
        # Gradient w.r.t. x_{ij}: 2 sum_r m_r load_r w_{ijr}.  The linear
        # minimiser over each simplex is the vertex of smallest gradient.
        vertex_loads = np.zeros_like(loads)
        gap = 0.0
        vertex: list[int] = []
        for i in range(num_items):
            res = res_stacks[i]
            wts = wt_stacks[i]
            grads = 2.0 * np.sum(weights[res] * loads[res] * wts, axis=1)
            j = int(np.argmin(grads))
            vertex.append(j)
            gap += float(x[i] @ grads - grads[j])
            np.add.at(vertex_loads, res[j], wts[j])
        direction_loads = vertex_loads - loads
        best_lower = max(best_lower, value - gap)
        if gap <= gap_tol * max(1.0, abs(value)):
            break

        # Exact line search: f(x + g d) is quadratic in g.
        a = float(weights @ (direction_loads * direction_loads))
        b = float(2.0 * (weights * loads) @ direction_loads)
        if a <= 0.0:
            step = 1.0 if b < 0.0 else 0.0
        else:
            step = float(np.clip(-b / (2.0 * a), 0.0, 1.0))
        if step == 0.0:
            break
        for i in range(num_items):
            x[i] *= 1.0 - step
            x[i][vertex[i]] += step
        loads = loads + step * direction_loads
        value = float(weights @ (loads * loads))
    else:
        iteration = max_iter

    return RelaxationResult(
        value=value,
        lower_bound=max(best_lower, 0.0),
        gap=float(gap),
        iterations=iteration,
    )
