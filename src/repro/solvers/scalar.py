"""Bounded one-dimensional convex minimisation.

The P2-B frequency-scaling subproblem of the paper is separable per
server, leaving a one-dimensional convex objective on a box
``[lo, hi]``.  The paper hands this to the CVX solver; we implement the
substitute here:

* :func:`minimize_convex_scalar` -- derivative-free golden-section
  search.  Exact to a configurable tolerance for any unimodal function.
* :func:`minimize_convex_scalar_batch` -- the same search over many
  independent intervals at once, with NumPy-masked convergence; each
  lane replays the scalar algorithm bit for bit.
* :func:`minimize_scalar_newton` -- safeguarded Newton iteration for
  objectives with known first and second derivatives; falls back to
  bisection steps when Newton leaves the bracket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import SolverError
from repro.types import FloatArray

#: Inverse golden ratio, the interval-reduction factor per iteration.
_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0
_INVPHI2 = (3.0 - math.sqrt(5.0)) / 2.0


@dataclass(frozen=True)
class GoldenSectionResult:
    """Outcome of a scalar minimisation.

    Attributes:
        x: The minimiser found.
        value: Objective value at ``x``.
        iterations: Number of objective evaluations performed.
        converged: Whether the bracket shrank below tolerance.
    """

    x: float
    value: float
    iterations: int
    converged: bool


def minimize_convex_scalar(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> GoldenSectionResult:
    """Minimise a unimodal function on ``[lo, hi]`` by golden-section search.

    Args:
        fn: Objective, assumed unimodal (convexity suffices) on the interval.
        lo: Lower bound of the feasible interval.
        hi: Upper bound of the feasible interval; must satisfy ``hi >= lo``.
        tol: Absolute tolerance on the bracket width, relative to the
            initial width (i.e. the search stops when the bracket is
            narrower than ``tol * max(1, hi - lo)``).
        max_iter: Hard cap on iterations.

    Returns:
        A :class:`GoldenSectionResult`.  The endpoints are always included
        as candidates so boundary optima are returned exactly.

    Raises:
        SolverError: If ``hi < lo`` or the bounds are not finite.
    """
    if not (math.isfinite(lo) and math.isfinite(hi)):
        raise SolverError(f"bounds must be finite, got [{lo}, {hi}]")
    if hi < lo:
        raise SolverError(f"empty interval: lo={lo} > hi={hi}")
    if hi == lo:
        return GoldenSectionResult(x=lo, value=fn(lo), iterations=1, converged=True)

    width = hi - lo
    threshold = tol * max(1.0, width)
    a, b = lo, hi
    c = a + _INVPHI2 * (b - a)
    d = a + _INVPHI * (b - a)
    fc, fd = fn(c), fn(d)
    evals = 2
    converged = False
    for _ in range(max_iter):
        if (b - a) <= threshold:
            converged = True
            break
        if fc <= fd:
            b, d, fd = d, c, fc
            c = a + _INVPHI2 * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INVPHI * (b - a)
            fd = fn(d)
        evals += 1

    # Pick the best among interior probes and the original endpoints, so
    # boundary minima (common in P2-B when the queue is empty) are exact.
    candidates = [(fn(lo), lo), (fn(hi), hi), (fc, c), (fd, d)]
    evals += 2
    best_value, best_x = min(candidates, key=lambda pair: pair[0])
    return GoldenSectionResult(
        x=best_x, value=best_value, iterations=evals, converged=converged
    )


@dataclass(frozen=True)
class BatchGoldenSectionResult:
    """Outcome of a batched scalar minimisation (one entry per lane).

    Attributes:
        x: Minimisers found.
        value: Objective values at ``x``.
        iterations: Objective evaluations each lane accounts for (the
            batched evaluator scores all active lanes together, so this
            counts what the scalar algorithm *would* have evaluated).
        converged: Whether each lane's bracket shrank below tolerance.
    """

    x: FloatArray
    value: FloatArray
    iterations: np.ndarray
    converged: np.ndarray


def minimize_convex_scalar_batch(
    fn: Callable[[FloatArray], FloatArray],
    lo: FloatArray,
    hi: FloatArray,
    *,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> BatchGoldenSectionResult:
    """Golden-section search over many independent intervals at once.

    Every lane follows exactly the update rule of
    :func:`minimize_convex_scalar` -- same probe points, same
    ``fc <= fd`` branch, same endpoint-included candidate comparison with
    the same first-minimum tie break -- so lane ``i`` of the result is
    bit-identical to a scalar call on ``(lo[i], hi[i])``, provided *fn*
    is elementwise (lane ``i`` of the output depends only on lane ``i``
    of the input) and never returns NaN.  Converged lanes are masked out
    of the bracket updates but stay in the vectorized objective calls
    (their extra evaluations are discarded, not counted).

    Args:
        fn: Vectorized objective mapping a lane array to a lane array.
        lo: Per-lane lower bounds (1-D).
        hi: Per-lane upper bounds (1-D, elementwise ``>= lo``).
        tol: Bracket tolerance, as in the scalar search.
        max_iter: Iteration cap, as in the scalar search.

    Returns:
        A :class:`BatchGoldenSectionResult` with arrays parallel to *lo*.

    Raises:
        SolverError: On shape mismatch, non-finite bounds, or any lane
            with ``hi < lo``.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    if lo.ndim != 1 or lo.shape != hi.shape:
        raise SolverError("lo and hi must be matching 1-D arrays")
    if lo.size == 0:
        empty = np.empty(0)
        return BatchGoldenSectionResult(
            x=empty,
            value=empty.copy(),
            iterations=np.empty(0, dtype=np.int64),
            converged=np.empty(0, dtype=bool),
        )
    if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
        raise SolverError("bounds must be finite")
    if np.any(hi < lo):
        bad = int(np.flatnonzero(hi < lo)[0])
        raise SolverError(f"empty interval: lo={lo[bad]} > hi={hi[bad]}")

    width = hi - lo
    threshold = tol * np.maximum(1.0, width)
    degenerate = width == 0.0
    a = lo.copy()
    b = hi.copy()
    c = a + _INVPHI2 * (b - a)
    d = a + _INVPHI * (b - a)
    fc = np.array(fn(c), dtype=np.float64)
    fd = np.array(fn(d), dtype=np.float64)
    evals = np.full(lo.shape, 2, dtype=np.int64)
    converged = degenerate.copy()
    active = ~degenerate
    for _ in range(max_iter):
        stopped = active & ((b - a) <= threshold)
        if np.any(stopped):
            converged |= stopped
            active &= ~stopped
        if not np.any(active):
            break
        left = active & (fc <= fd)
        right = active & ~left
        b[left] = d[left]
        d[left] = c[left]
        fd[left] = fc[left]
        c[left] = a[left] + _INVPHI2 * (b[left] - a[left])
        a[right] = c[right]
        c[right] = d[right]
        fc[right] = fd[right]
        d[right] = a[right] + _INVPHI * (b[right] - a[right])
        probe = np.where(left, c, d)
        vals = np.asarray(fn(probe), dtype=np.float64)
        fc[left] = vals[left]
        fd[right] = vals[right]
        evals[active] += 1

    f_lo = np.array(fn(lo), dtype=np.float64)
    f_hi = np.array(fn(hi), dtype=np.float64)
    evals += 2
    # Degenerate lanes mirror the scalar early return: one evaluation at
    # lo (which all four candidates collapse to anyway).
    evals[degenerate] = 1
    values = np.stack([f_lo, f_hi, fc, fd])
    points = np.stack([lo, hi, c, d])
    pick = np.argmin(values, axis=0)
    lanes = np.arange(lo.size)
    return BatchGoldenSectionResult(
        x=points[pick, lanes],
        value=values[pick, lanes],
        iterations=evals,
        converged=converged,
    )


def minimize_scalar_newton(
    grad: Callable[[float], float],
    hess: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 100,
) -> float:
    """Find the minimiser of a smooth convex function on ``[lo, hi]``.

    Works on the first-order condition ``grad(x) = 0`` with a safeguarded
    Newton iteration: whenever the Newton step leaves the current bracket
    the method bisects instead, which guarantees convergence for any
    monotone ``grad`` (convex objective).

    Args:
        grad: First derivative of the objective.
        hess: Second derivative; must be positive on the interval.
        lo: Lower bound.
        hi: Upper bound.
        tol: Tolerance on the gradient magnitude / bracket width.
        max_iter: Iteration cap.

    Returns:
        The minimiser, clipped to ``[lo, hi]``.  If the gradient does not
        change sign on the interval the appropriate endpoint is returned
        (the objective is monotone there).
    """
    if hi < lo:
        raise SolverError(f"empty interval: lo={lo} > hi={hi}")
    g_lo = grad(lo)
    if g_lo >= 0.0:
        return lo  # objective increasing on the whole interval
    g_hi = grad(hi)
    if g_hi <= 0.0:
        return hi  # objective decreasing on the whole interval

    a, b = lo, hi
    x = 0.5 * (a + b)
    for _ in range(max_iter):
        g = grad(x)
        if abs(g) <= tol or (b - a) <= tol * max(1.0, hi - lo):
            return x
        if g > 0.0:
            b = x
        else:
            a = x
        h = hess(x)
        step = g / h if h > 0.0 else 0.0
        candidate = x - step
        if not (a < candidate < b) or step == 0.0:
            candidate = 0.5 * (a + b)
        x = candidate
    return x
