"""Shared type aliases used across the :mod:`repro` package.

These aliases document intent: a ``FloatArray`` is always a
``numpy.ndarray`` of ``float64``, an ``IntArray`` an array of ``int64``.
Shapes are documented at use sites with the paper's notation:

* ``I`` -- number of mobile devices,
* ``K`` -- number of base stations,
* ``N`` -- number of edge servers,
* ``M`` -- number of server clusters.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
import numpy.typing as npt

FloatArray: TypeAlias = npt.NDArray[np.float64]
IntArray: TypeAlias = npt.NDArray[np.int64]
BoolArray: TypeAlias = npt.NDArray[np.bool_]

#: A numpy random generator; every stochastic component takes one explicitly.
Rng: TypeAlias = np.random.Generator


def as_float_array(values: object, name: str = "array") -> FloatArray:
    """Convert *values* to a contiguous float64 array, validating finiteness.

    Raises ``ValueError`` when the input contains NaNs or infinities,
    naming the offending argument for easier debugging.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {arr!r}")
    return arr


def as_int_array(values: object, name: str = "array") -> IntArray:
    """Convert *values* to a contiguous int64 array."""
    arr = np.ascontiguousarray(values, dtype=np.int64)
    del name
    return arr
