"""Workload substrate: per-slot task generation.

Each device generates one task per slot with input data length ``d_{i,t}``
(bits) and job size ``f_{i,t}`` (CPU cycles).  The paper models both as a
periodic trend plus iid noise, motivated by a diurnal video-views trace;
its simulations draw them uniformly (50-200 Mcycles, 3-10 Mbit).

* :mod:`repro.workload.tasks` -- the :class:`~repro.workload.tasks.TaskBatch`
  value type.
* :mod:`repro.workload.generators` -- uniform and periodic-trend
  generators behind one interface.
* :mod:`repro.workload.traces` -- synthetic diurnal profiles (the Fig. 2
  substitutes) and a views-like trace generator.
* :mod:`repro.workload.suitability` -- draws of the ``sigma_{i,n}``
  suitability matrix.
"""

from repro.workload.tasks import TaskBatch
from repro.workload.generators import (
    PeriodicTaskGenerator,
    TaskGenerator,
    TraceTaskGenerator,
    UniformTaskGenerator,
)
from repro.workload.traces import (
    diurnal_profile,
    synthetic_video_views,
)
from repro.workload.suitability import clustered_suitability, uniform_suitability
from repro.workload.estimation import (
    ProfileFit,
    fit_periodic_profile,
    fit_price_model,
    fit_task_generator,
)

__all__ = [
    "ProfileFit",
    "fit_periodic_profile",
    "fit_price_model",
    "fit_task_generator",
    "TaskBatch",
    "TaskGenerator",
    "UniformTaskGenerator",
    "PeriodicTaskGenerator",
    "TraceTaskGenerator",
    "diurnal_profile",
    "synthetic_video_views",
    "uniform_suitability",
    "clustered_suitability",
]
