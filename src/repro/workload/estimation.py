"""Fitting the paper's state models to recorded traces.

The paper assumes each state is a known periodic trend plus iid noise.
In practice an operator has a trace, not a trend; these helpers close
the gap:

* :func:`fit_periodic_profile` -- recover the multiplicative diurnal
  profile and the noise level from one series;
* :func:`fit_price_model` -- build a
  :class:`~repro.energy.pricing.PeriodicPriceModel` from a recorded
  price trace;
* :func:`fit_task_generator` -- build a
  :class:`~repro.workload.generators.PeriodicTaskGenerator` whose trend
  follows a recorded demand trace.

All fits go through :func:`repro.analysis.decomposition.seasonal_decompose`
and report the periodicity strength so callers can reject traces where
the paper's model is a poor fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.decomposition import periodicity_strength, seasonal_decompose
from repro.energy.pricing import PeriodicPriceModel
from repro.exceptions import ConfigurationError
from repro.types import FloatArray
from repro.workload.generators import PeriodicTaskGenerator


@dataclass(frozen=True)
class ProfileFit:
    """A fitted periodic profile.

    Attributes:
        profile: Multiplicative profile of length ``period`` with mean 1.
        mean_level: Mean level of the series.
        noise_cv: Residual coefficient of variation (std of the residual
            over the mean level).
        strength: Fraction of de-levelled variance the profile explains.
        period: The period used.
    """

    profile: FloatArray
    mean_level: float
    noise_cv: float
    strength: float
    period: int


def fit_periodic_profile(series: FloatArray, period: int) -> ProfileFit:
    """Fit a mean-1 multiplicative profile + noise level to a series.

    Raises:
        ConfigurationError: If the series is non-positive on average or
            too short (two periods required).
    """
    series = np.asarray(series, dtype=np.float64)
    decomposition = seasonal_decompose(series, period)
    mean_level = float(series.mean())
    if mean_level <= 0.0:
        raise ConfigurationError("series must have a positive mean")
    additive_profile = decomposition.seasonal_profile
    profile = 1.0 + additive_profile / mean_level
    profile = np.maximum(profile, 1e-3)
    noise_cv = float(np.std(decomposition.residual) / mean_level)
    return ProfileFit(
        profile=profile,
        mean_level=mean_level,
        noise_cv=noise_cv,
        strength=periodicity_strength(series, period),
        period=period,
    )


def fit_price_model(
    price_trace: FloatArray,
    *,
    period: int = 24,
    floor: float = 0.0,
) -> PeriodicPriceModel:
    """Fit a :class:`PeriodicPriceModel` to a recorded price trace.

    The trend is the per-phase mean of the trace; the noise std is the
    residual standard deviation.
    """
    price_trace = np.asarray(price_trace, dtype=np.float64)
    if np.any(price_trace < 0.0):
        raise ConfigurationError("price trace must be non-negative")
    fit = fit_periodic_profile(price_trace, period)
    trend = fit.mean_level * fit.profile
    noise_std = fit.noise_cv * fit.mean_level
    return PeriodicPriceModel(
        np.maximum(trend, 0.0), noise_std=noise_std, floor=floor
    )


def fit_task_generator(
    demand_trace: FloatArray,
    *,
    period: int = 24,
    num_devices: int,
    mean_cycles: float = 125e6,
    mean_bits: float = 6.5e6,
    rng: np.random.Generator | None = None,
    heterogeneity: float = 0.3,
) -> PeriodicTaskGenerator:
    """Build a task generator whose diurnal trend follows a demand trace.

    The trace (e.g. hourly video views) sets the *shape*; per-device
    mean demands are drawn around the given means so devices stay
    heterogeneous, as in the paper's setting.

    Args:
        demand_trace: Recorded aggregate demand, one value per slot.
        period: Trend period ``D``.
        num_devices: Number of devices to generate for.
        mean_cycles: Mean per-device compute demand at profile 1.
        mean_bits: Mean per-device data length at profile 1.
        rng: Source for the per-device heterogeneity; deterministic
            means when omitted.
        heterogeneity: Relative half-width of the per-device mean draw.

    Returns:
        A :class:`PeriodicTaskGenerator` with the fitted profile and
        noise level.
    """
    if num_devices <= 0:
        raise ConfigurationError("num_devices must be positive")
    if not 0.0 <= heterogeneity < 1.0:
        raise ConfigurationError("heterogeneity must lie in [0, 1)")
    fit = fit_periodic_profile(demand_trace, period)
    if rng is None:
        base_cycles = np.full(num_devices, mean_cycles)
        base_bits = np.full(num_devices, mean_bits)
    else:
        lo, hi = 1.0 - heterogeneity, 1.0 + heterogeneity
        base_cycles = mean_cycles * rng.uniform(lo, hi, size=num_devices)
        base_bits = mean_bits * rng.uniform(lo, hi, size=num_devices)
    return PeriodicTaskGenerator(
        base_cycles,
        base_bits,
        profile=fit.profile,
        noise_cv=max(fit.noise_cv, 1e-6),
    )
