"""Task generators: per-slot draws of ``(f_t, d_t)``.

Three families:

* :class:`UniformTaskGenerator` -- the paper's simulation setting: each
  slot, ``f ~ U[50, 200]`` Mcycles and ``d ~ U[3, 10]`` Mbit per device.
* :class:`PeriodicTaskGenerator` -- the paper's *model*:
  ``f_{i,t} = fbar_{i,t} + e``, a periodic trend plus iid noise, i.e.
  non-iid states.  The trend is a per-device base demand scaled by a
  diurnal profile.
* :class:`TraceTaskGenerator` -- replay externally supplied arrays, for
  plugging in real traces.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray, Rng
from repro.workload.tasks import TaskBatch
from repro.workload.traces import diurnal_profile


class TaskGenerator(abc.ABC):
    """Produces one :class:`TaskBatch` per slot."""

    #: Number of devices each batch covers.
    num_devices: int

    #: Period of the underlying trend (1 when iid).
    period: int = 1

    @abc.abstractmethod
    def generate(self, t: int, rng: Rng) -> TaskBatch:
        """Draw the tasks for slot *t*."""

    def subset(self, indices: "tuple[int, ...] | list[int]") -> "TaskGenerator":
        """A generator covering only the given device indices.

        Used by the sharding layer to carve per-cell workloads out of a
        global one.  Families whose devices are exchangeable (uniform
        draws) just shrink; families with per-device parameters slice
        them.  Subclasses without a meaningful restriction inherit this
        error.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not support device subsetting"
        )


def _check_subset(indices, num_devices: int) -> list[int]:
    indices = [int(i) for i in indices]
    if not indices:
        raise ConfigurationError("subset needs at least one device")
    if any(not 0 <= i < num_devices for i in indices):
        raise ConfigurationError(
            f"subset indices out of range for {num_devices} devices"
        )
    return indices


class UniformTaskGenerator(TaskGenerator):
    """Iid uniform task draws (paper Sec. VI-A).

    Args:
        num_devices: Number of devices ``I``.
        cycles_range: ``f`` range in CPU cycles (default 50-200 Mcycles).
        bits_range: ``d`` range in bits (default 3-10 Mbit).
    """

    def __init__(
        self,
        num_devices: int,
        *,
        cycles_range: tuple[float, float] = (50e6, 200e6),
        bits_range: tuple[float, float] = (3e6, 10e6),
    ) -> None:
        if num_devices <= 0:
            raise ConfigurationError("num_devices must be positive")
        for lo, hi, name in (
            (*cycles_range, "cycles_range"),
            (*bits_range, "bits_range"),
        ):
            if not 0 < lo <= hi:
                raise ConfigurationError(f"invalid {name}: [{lo}, {hi}]")
        self.num_devices = int(num_devices)
        self.cycles_range = cycles_range
        self.bits_range = bits_range
        self.period = 1

    def generate(self, t: int, rng: Rng) -> TaskBatch:
        del t
        return TaskBatch(
            cycles=rng.uniform(*self.cycles_range, size=self.num_devices),
            bits=rng.uniform(*self.bits_range, size=self.num_devices),
        )

    def subset(self, indices) -> "UniformTaskGenerator":
        indices = _check_subset(indices, self.num_devices)
        return UniformTaskGenerator(
            len(indices),
            cycles_range=self.cycles_range,
            bits_range=self.bits_range,
        )


class PeriodicTaskGenerator(TaskGenerator):
    """Non-iid tasks: periodic trend plus iid noise (paper Sec. III-A).

    ``f_{i,t} = base_cycles_i * profile[t mod D] + noise`` and likewise
    for ``d``; results are clipped at a small positive floor so latencies
    stay finite.

    Args:
        base_cycles: Per-device mean compute demand ``(I,)`` in cycles.
        base_bits: Per-device mean data length ``(I,)`` in bits.
        profile: Periodic multiplier of length ``D``; defaults to the
            standard diurnal profile with an evening peak.
        noise_cv: Coefficient of variation of the additive Gaussian noise
            (std = ``noise_cv *`` per-device base).
        floor_fraction: Demands are clipped below at this fraction of the
            per-device base.
    """

    def __init__(
        self,
        base_cycles: FloatArray,
        base_bits: FloatArray,
        *,
        profile: FloatArray | None = None,
        noise_cv: float = 0.1,
        floor_fraction: float = 0.05,
    ) -> None:
        base_cycles = np.asarray(base_cycles, dtype=np.float64)
        base_bits = np.asarray(base_bits, dtype=np.float64)
        if base_cycles.ndim != 1 or base_cycles.shape != base_bits.shape:
            raise ConfigurationError("base_cycles/base_bits must match, 1-D")
        if np.any(base_cycles <= 0) or np.any(base_bits <= 0):
            raise ConfigurationError("base demands must be positive")
        if noise_cv < 0:
            raise ConfigurationError("noise_cv must be non-negative")
        if not 0 < floor_fraction < 1:
            raise ConfigurationError("floor_fraction must lie in (0, 1)")
        if profile is None:
            profile = diurnal_profile()
        profile = np.asarray(profile, dtype=np.float64)
        if profile.ndim != 1 or profile.size == 0 or np.any(profile <= 0):
            raise ConfigurationError("profile must be a positive 1-D array")
        self.base_cycles = base_cycles
        self.base_bits = base_bits
        self.profile = profile
        self.noise_cv = float(noise_cv)
        self.floor_fraction = float(floor_fraction)
        self.num_devices = int(base_cycles.size)
        self.period = int(profile.size)

    def trend(self, t: int) -> tuple[FloatArray, FloatArray]:
        """The deterministic components ``(fbar_t, dbar_t)``."""
        mult = float(self.profile[t % self.period])
        return self.base_cycles * mult, self.base_bits * mult

    def generate(self, t: int, rng: Rng) -> TaskBatch:
        trend_cycles, trend_bits = self.trend(t)
        if self.noise_cv > 0:
            cycles = trend_cycles + self.noise_cv * self.base_cycles * (
                rng.standard_normal(self.num_devices)
            )
            bits = trend_bits + self.noise_cv * self.base_bits * (
                rng.standard_normal(self.num_devices)
            )
        else:
            cycles, bits = trend_cycles.copy(), trend_bits.copy()
        cycles = np.maximum(cycles, self.floor_fraction * self.base_cycles)
        bits = np.maximum(bits, self.floor_fraction * self.base_bits)
        return TaskBatch(cycles=cycles, bits=bits)

    def subset(self, indices) -> "PeriodicTaskGenerator":
        indices = _check_subset(indices, self.num_devices)
        return PeriodicTaskGenerator(
            self.base_cycles[indices],
            self.base_bits[indices],
            profile=self.profile,
            noise_cv=self.noise_cv,
            floor_fraction=self.floor_fraction,
        )


class TraceTaskGenerator(TaskGenerator):
    """Replay recorded per-slot demand arrays, repeating past the end.

    Args:
        cycles_trace: ``(T, I)`` compute demands.
        bits_trace: ``(T, I)`` data lengths.
    """

    def __init__(self, cycles_trace: FloatArray, bits_trace: FloatArray) -> None:
        cycles_trace = np.asarray(cycles_trace, dtype=np.float64)
        bits_trace = np.asarray(bits_trace, dtype=np.float64)
        if (
            cycles_trace.ndim != 2
            or cycles_trace.shape != bits_trace.shape
            or cycles_trace.size == 0
        ):
            raise ConfigurationError("traces must be matching non-empty (T, I) arrays")
        if np.any(cycles_trace < 0) or np.any(bits_trace < 0):
            raise ConfigurationError("trace demands must be non-negative")
        self.cycles_trace = cycles_trace
        self.bits_trace = bits_trace
        self.num_devices = int(cycles_trace.shape[1])
        self.period = int(cycles_trace.shape[0])

    def generate(self, t: int, rng: Rng) -> TaskBatch:
        del rng
        row = t % self.cycles_trace.shape[0]
        return TaskBatch(
            cycles=self.cycles_trace[row].copy(),
            bits=self.bits_trace[row].copy(),
        )

    def subset(self, indices) -> "TraceTaskGenerator":
        indices = _check_subset(indices, self.num_devices)
        return TraceTaskGenerator(
            self.cycles_trace[:, indices], self.bits_trace[:, indices]
        )
