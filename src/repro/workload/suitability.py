"""Draws of the task-server suitability matrix ``sigma_{i,n}``.

The paper treats ``sigma_{i,n} in (0, 1]`` as fixed and known, drawn
uniformly from [0.5, 1] in its simulations.  We also provide a clustered
variant where servers specialise in task types, which makes the server
selection decision more consequential (used by an ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray, Rng


def uniform_suitability(
    rng: Rng,
    num_devices: int,
    num_servers: int,
    *,
    low: float = 0.5,
    high: float = 1.0,
) -> FloatArray:
    """Uniform iid suitabilities (the paper's setting)."""
    if num_devices <= 0 or num_servers <= 0:
        raise ConfigurationError("dimensions must be positive")
    if not 0.0 < low <= high <= 1.0:
        raise ConfigurationError(f"need 0 < low <= high <= 1, got [{low}, {high}]")
    return rng.uniform(low, high, size=(num_devices, num_servers))


def clustered_suitability(
    rng: Rng,
    num_devices: int,
    num_servers: int,
    *,
    num_types: int = 4,
    matched: float = 0.95,
    mismatched: float = 0.55,
    jitter: float = 0.04,
) -> FloatArray:
    """Suitabilities induced by task types and server specialisations.

    Each device's tasks have one of ``num_types`` types; each server
    specialises in one type.  Matched pairs get suitability near
    ``matched``, others near ``mismatched``, with uniform jitter.  Values
    are clipped into ``(0, 1]``.
    """
    if num_types <= 0:
        raise ConfigurationError("num_types must be positive")
    if not 0.0 < mismatched <= matched <= 1.0:
        raise ConfigurationError("need 0 < mismatched <= matched <= 1")
    device_types = rng.integers(num_types, size=num_devices)
    server_types = rng.integers(num_types, size=num_servers)
    match = device_types[:, None] == server_types[None, :]
    base = np.where(match, matched, mismatched)
    noisy = base + rng.uniform(-jitter, jitter, size=base.shape)
    return np.clip(noisy, 1e-3, 1.0)
