"""The per-slot task batch value type."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.types import FloatArray, as_float_array


@dataclass(frozen=True)
class TaskBatch:
    """One slot's tasks for all devices.

    Attributes:
        cycles: ``f_t`` -- CPU cycles required per device, shape ``(I,)``.
        bits: ``d_t`` -- input data length per device in bits, shape ``(I,)``.
    """

    cycles: FloatArray
    bits: FloatArray

    def __post_init__(self) -> None:
        cycles = as_float_array(self.cycles, "cycles")
        bits = as_float_array(self.bits, "bits")
        if cycles.ndim != 1 or bits.ndim != 1 or cycles.shape != bits.shape:
            raise ValidationError(
                f"cycles and bits must be matching 1-D arrays, got "
                f"{cycles.shape} and {bits.shape}"
            )
        if np.any(cycles < 0.0) or np.any(bits < 0.0):
            raise ValidationError("task sizes must be non-negative")
        object.__setattr__(self, "cycles", cycles)
        object.__setattr__(self, "bits", bits)

    @property
    def num_devices(self) -> int:
        """Number of devices ``I`` the batch covers."""
        return int(self.cycles.size)

    @property
    def total_cycles(self) -> float:
        """Aggregate compute demand of the slot."""
        return float(np.sum(self.cycles))

    @property
    def total_bits(self) -> float:
        """Aggregate upload demand of the slot."""
        return float(np.sum(self.bits))

    def scaled(self, cycle_factor: float = 1.0, bit_factor: float = 1.0) -> "TaskBatch":
        """Return a copy with demands multiplied by the given factors."""
        return TaskBatch(cycles=self.cycles * cycle_factor, bits=self.bits * bit_factor)
