"""Synthetic diurnal traces standing in for the paper's real-world data.

The paper's Fig. 2 motivates the non-iid state model with hourly views of
an online video: high during evening peak hours, low overnight, with a
clear 24-hour period.  We cannot ship that trace, so
:func:`diurnal_profile` builds the periodic multiplier (the ``fbar``/
``dbar`` trend shape) and :func:`synthetic_video_views` draws a full
views-like time series with the same structure (trend x noise) for the
Fig. 2 reproduction bench.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray, Rng


def diurnal_profile(
    *,
    period: int = 24,
    low: float = 0.6,
    high: float = 1.5,
    peak_hour: float = 20.0,
    trough_hour: float = 4.0,
) -> FloatArray:
    """A smooth periodic multiplier with an evening peak and night trough.

    The profile is a raised cosine in the "hour distance" from the peak,
    rescaled to span ``[low, high]`` with the minimum at ``trough_hour``.
    Multiplying a base demand by this profile yields the paper's
    "periodic trend" component.

    Args:
        period: Slots per day (the paper's ``D``).
        low: Minimum multiplier (off-peak).
        high: Maximum multiplier (peak).
        peak_hour: Hour of the day (0-24) where demand peaks.
        trough_hour: Hour where demand bottoms out; used to orient the
            cosine, must differ from ``peak_hour``.

    Returns:
        Array of length *period*; its max is ``high`` and min ``low``.
    """
    if period < 2:
        raise ConfigurationError("period must be at least 2")
    if not 0.0 < low <= high:
        raise ConfigurationError(f"need 0 < low <= high, got [{low}, {high}]")
    if abs(peak_hour - trough_hour) < 1e-9:
        raise ConfigurationError("peak_hour and trough_hour must differ")
    hours = np.arange(period) * (24.0 / period)
    # Distance on the 24 h circle from the peak, normalised to [0, 1]
    # where 1 is the antipode of the peak.
    delta = np.minimum(np.abs(hours - peak_hour), 24.0 - np.abs(hours - peak_hour))
    shape = 0.5 * (1.0 + np.cos(np.pi * delta / 12.0))  # 1 at peak, 0 at antipode
    lo_raw, hi_raw = float(shape.min()), float(shape.max())
    normalised = (shape - lo_raw) / (hi_raw - lo_raw)
    return low + (high - low) * normalised


def synthetic_video_views(
    days: int,
    rng: Rng,
    *,
    period: int = 24,
    base_views: float = 10_000.0,
    noise_cv: float = 0.08,
    weekly_weekend_boost: float = 1.15,
) -> FloatArray:
    """Draw an hourly views-like trace: diurnal trend x weekly factor x noise.

    This is the Fig. 2 substitute: a non-iid series whose structure
    (periodic trend plus iid fluctuation) is exactly what the paper
    assumes for workloads and prices.

    Args:
        days: Number of days to generate (trace length is ``days * period``).
        rng: Random generator.
        period: Slots per day.
        base_views: Mean hourly views at multiplier 1.
        noise_cv: Coefficient of variation of the multiplicative noise.
        weekly_weekend_boost: Multiplier applied on days 5 and 6 of each
            week (weekend viewing bump).

    Returns:
        Non-negative array of length ``days * period``.
    """
    if days <= 0:
        raise ConfigurationError("days must be positive")
    if noise_cv < 0:
        raise ConfigurationError("noise_cv must be non-negative")
    profile = diurnal_profile(period=period)
    trend = np.tile(profile, days) * base_views
    day_index = np.repeat(np.arange(days), period)
    weekend = (day_index % 7) >= 5
    trend = trend * np.where(weekend, weekly_weekend_boost, 1.0)
    noise = 1.0 + noise_cv * rng.standard_normal(trend.size)
    return np.maximum(trend * noise, 0.0)
