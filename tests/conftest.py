"""Shared fixtures: hand-built tiny networks and small random scenarios."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.state import SlotState
from repro.energy.models import QuadraticEnergyModel
from repro.network.connectivity import StrategySpace
from repro.network.topology import (
    BaseStation,
    EdgeServer,
    FronthaulType,
    MECNetwork,
    MobileDevice,
    ServerCluster,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_tiny_network() -> MECNetwork:
    """A deterministic 2-BS / 2-cluster / 3-server / 4-device network.

    * BS0: macro cell covering everything, wired to cluster 0.
    * BS1: small cell covering devices 2 and 3 only, wired to cluster 1.
    * Cluster 0 hosts servers 0, 1; cluster 1 hosts server 2.

    So devices 0 and 1 may only use BS0 -> servers {0, 1}; devices 2 and
    3 may additionally reach server 2 through BS1.
    """
    energy = QuadraticEnergyModel(a=5.0, b=2.0, c=10.0)
    base_stations = (
        BaseStation(
            index=0,
            position=(0.0, 0.0),
            coverage_radius=10_000.0,
            access_bandwidth=80e6,
            fronthaul_bandwidth=0.8e9,
            fronthaul_spectral_efficiency=10.0,
            fronthaul_type=FronthaulType.WIRED,
            connected_clusters=(0,),
            name="macro",
        ),
        BaseStation(
            index=1,
            position=(1_000.0, 0.0),
            coverage_radius=300.0,
            access_bandwidth=60e6,
            fronthaul_bandwidth=0.6e9,
            fronthaul_spectral_efficiency=10.0,
            fronthaul_type=FronthaulType.WIRED,
            connected_clusters=(1,),
            name="small",
        ),
    )
    clusters = (
        ServerCluster(index=0, servers=(0, 1)),
        ServerCluster(index=1, servers=(2,)),
    )
    servers = (
        EdgeServer(index=0, cluster=0, cores=64, freq_min=1.8, freq_max=3.6,
                   energy_model=energy),
        EdgeServer(index=1, cluster=0, cores=128, freq_min=1.8, freq_max=3.6,
                   energy_model=energy),
        EdgeServer(index=2, cluster=1, cores=64, freq_min=1.8, freq_max=3.6,
                   energy_model=energy),
    )
    devices = (
        MobileDevice(index=0, position=(10.0, 10.0)),
        MobileDevice(index=1, position=(50.0, -20.0)),
        MobileDevice(index=2, position=(900.0, 0.0)),
        MobileDevice(index=3, position=(1_100.0, 50.0)),
    )
    suitability = np.array(
        [
            [1.0, 0.8, 0.6],
            [0.7, 1.0, 0.9],
            [0.9, 0.6, 1.0],
            [0.5, 0.9, 0.8],
        ]
    )
    return MECNetwork(base_stations, clusters, servers, devices, suitability)


def make_tiny_state(t: int = 0, price: float = 0.5) -> SlotState:
    """A fixed state matching :func:`make_tiny_network`'s coverage."""
    h = np.array(
        [
            [30.0, 0.0],
            [25.0, 0.0],
            [20.0, 40.0],
            [35.0, 45.0],
        ]
    )
    return SlotState(
        t=t,
        cycles=np.array([100e6, 150e6, 80e6, 120e6]),
        bits=np.array([5e6, 8e6, 4e6, 6e6]),
        spectral_efficiency=h,
        price=price,
    )


@pytest.fixture
def tiny_network() -> MECNetwork:
    return make_tiny_network()


@pytest.fixture
def tiny_state() -> SlotState:
    return make_tiny_state()


@pytest.fixture
def tiny_space(tiny_network: MECNetwork, tiny_state: SlotState) -> StrategySpace:
    return StrategySpace(tiny_network, tiny_state.coverage())


@pytest.fixture
def small_scenario() -> repro.Scenario:
    """A reduced random scenario: fast enough for per-test simulation."""
    return repro.make_paper_scenario(
        seed=42,
        config=repro.ScenarioConfig(num_devices=12),
        num_base_stations=3,
        num_clusters=2,
        servers_per_cluster=2,
        num_macro_stations=1,
    )


@pytest.fixture
def paper_scenario() -> repro.Scenario:
    """The full paper-default scenario (built once per test that needs it)."""
    return repro.make_paper_scenario(
        seed=7, config=repro.ScenarioConfig(num_devices=40)
    )
