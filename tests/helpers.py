"""Reference implementations used to cross-check the optimised code.

Everything here is written for clarity over speed: brute-force
enumeration of P2-A, naive latency evaluation straight from the paper's
formulas, and random feasible decisions.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.latency import optimal_total_latency
from repro.core.state import Assignment, SlotState
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.types import FloatArray, Rng


def brute_force_p2a(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    frequencies: FloatArray,
) -> tuple[Assignment, float]:
    """Enumerate every feasible assignment; only viable for tiny instances."""
    choices_per_device = []
    for i in range(network.num_devices):
        ks, ns = space.pairs(i)
        choices_per_device.append(list(zip(ks.tolist(), ns.tolist())))
    best_value = np.inf
    best: Assignment | None = None
    for combo in itertools.product(*choices_per_device):
        bs_of = np.array([k for k, _ in combo], dtype=np.int64)
        server_of = np.array([n for _, n in combo], dtype=np.int64)
        assignment = Assignment(bs_of=bs_of, server_of=server_of)
        value = optimal_total_latency(network, state, assignment, frequencies)
        if value < best_value:
            best_value = value
            best = assignment
    assert best is not None
    return best, float(best_value)


def naive_total_latency(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    access_share: FloatArray,
    fronthaul_share: FloatArray,
    compute_share: FloatArray,
    frequencies: FloatArray,
) -> float:
    """Eqs. (7)-(11) transcribed literally, one device at a time."""
    total = 0.0
    for i in range(network.num_devices):
        k = int(assignment.bs_of[i])
        n = int(assignment.server_of[i])
        server = network.servers[n]
        speed = server.speed_scale * frequencies[n] * 1e9
        sigma = network.suitability[i, n]
        if state.cycles[i] > 0:
            total += state.cycles[i] / (speed * sigma * compute_share[i])
        bs = network.base_stations[k]
        if state.bits[i] > 0:
            total += state.bits[i] / (
                bs.access_bandwidth
                * state.spectral_efficiency[i, k]
                * access_share[i]
            )
            total += state.bits[i] / (
                bs.fronthaul_bandwidth
                * bs.fronthaul_spectral_efficiency
                * fronthaul_share[i]
            )
    return total


def random_feasible_assignment(space: StrategySpace, rng: Rng) -> Assignment:
    """One random feasible assignment (independent of ROPT's code path)."""
    bs_of, server_of = space.random_assignment(rng)
    return Assignment(bs_of=bs_of, server_of=server_of)
