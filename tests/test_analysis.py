"""Tests for run aggregation and table formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.aggregate import bootstrap_ci, paired_ratio, summarize_runs
from repro.analysis.tables import format_table
from repro.exceptions import ConfigurationError


class TestAggregate:
    def test_summarize_runs_basics(self) -> None:
        stats = summarize_runs(np.array([1.0, 2.0, 3.0]))
        assert stats.mean == pytest.approx(2.0)
        assert stats.num_runs == 3
        assert stats.ci_low <= stats.mean <= stats.ci_high

    def test_single_run_degenerate(self) -> None:
        stats = summarize_runs(np.array([5.0]))
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 5.0

    def test_empty_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            summarize_runs(np.array([]))

    def test_bootstrap_ci_covers_true_mean(self) -> None:
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 1.0, size=200)
        lo, hi = bootstrap_ci(sample, np.random.default_rng(1))
        assert lo < 10.0 < hi
        assert hi - lo < 0.6  # reasonably tight at n=200

    def test_bootstrap_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            bootstrap_ci(np.array([]), np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            bootstrap_ci(np.array([1.0, 2.0]), np.random.default_rng(0),
                         confidence=1.5)

    def test_paired_ratio(self) -> None:
        stats = paired_ratio(np.array([2.0, 4.0]), np.array([1.0, 2.0]))
        assert stats.mean == pytest.approx(2.0)

    def test_paired_ratio_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            paired_ratio(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            paired_ratio(np.array([1.0]), np.array([0.0]))


class TestFormatTable:
    def test_alignment_and_floats(self) -> None:
        table = format_table(
            ["name", "value"],
            [["cgba", 1.23456], ["ropt", 10.0]],
            title="Results",
        )
        lines = table.splitlines()
        assert lines[0] == "Results"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in table
        assert "ropt" in table

    def test_row_width_mismatch_rejected(self) -> None:
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_non_float_cells_stringified(self) -> None:
        table = format_table(["k", "v"], [[1, "x"], [None, True]])
        assert "None" in table and "True" in table
