"""Tests for the steady-state queue analysis and text plots."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.equilibrium import (
    estimate_equilibrium_backlog,
    mean_cost_at_backlog,
)
from repro.analysis.text_plots import line_chart, sparkline
from repro.core.cgba import solve_p2a_cgba
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace


@pytest.fixture(scope="module")
def setup():
    scenario = repro.make_paper_scenario(
        seed=55,
        config=repro.ScenarioConfig(num_devices=10),
        num_base_stations=3,
        num_clusters=2,
        servers_per_cluster=2,
        num_macro_stations=1,
    )
    states = list(scenario.fresh_states(12))
    return scenario, states


class TestMeanCost:
    def test_monotone_nonincreasing_in_backlog(self, setup) -> None:
        scenario, states = setup
        network = scenario.network
        rng = scenario.controller_rng("eq-test")
        mid = 0.5 * (network.freq_min + network.freq_max)
        assignments = [
            solve_p2a_cgba(
                network, s, StrategySpace(network, s.coverage()), mid, rng
            ).assignment
            for s in states
        ]
        costs = [
            mean_cost_at_backlog(
                network, states, assignments, backlog=q, v=100.0
            )
            for q in (0.0, 10.0, 100.0, 10_000.0)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))


class TestEquilibriumBacklog:
    def test_zero_when_budget_generous(self, setup) -> None:
        scenario, states = setup
        q = estimate_equilibrium_backlog(
            scenario.network, states, scenario.controller_rng("eq0"),
            v=100.0, budget=1e9,
        )
        assert q == 0.0

    def test_infeasible_budget_raises(self, setup) -> None:
        scenario, states = setup
        with pytest.raises(ConfigurationError, match="infeasible"):
            estimate_equilibrium_backlog(
                scenario.network, states, scenario.controller_rng("eq1"),
                v=100.0, budget=scenario.budget * 1e-6,
            )

    def test_empty_states_rejected(self, setup) -> None:
        scenario, _ = setup
        with pytest.raises(ConfigurationError):
            estimate_equilibrium_backlog(
                scenario.network, [], scenario.controller_rng("eq2"),
                v=100.0, budget=scenario.budget,
            )

    def test_scales_linearly_with_v(self, setup) -> None:
        scenario, states = setup
        rng = scenario.controller_rng("eq3")
        # Use a tight budget so the constraint binds and Q* > 0.
        budget = 0.6 * scenario.budget
        q1 = estimate_equilibrium_backlog(
            scenario.network, states, rng, v=50.0, budget=budget
        )
        q2 = estimate_equilibrium_backlog(
            scenario.network, states, rng, v=200.0, budget=budget
        )
        assert q1 > 0.0
        assert q2 / q1 == pytest.approx(4.0, rel=0.15)

    def test_cost_at_equilibrium_matches_budget(self, setup) -> None:
        scenario, states = setup
        network = scenario.network
        rng = scenario.controller_rng("eq4")
        q = estimate_equilibrium_backlog(
            network, states, rng, v=100.0, budget=scenario.budget
        )
        mid = 0.5 * (network.freq_min + network.freq_max)
        assignments = [
            solve_p2a_cgba(
                network, s, StrategySpace(network, s.coverage()), mid, rng
            ).assignment
            for s in states
        ]
        cost = mean_cost_at_backlog(
            network, states, assignments, backlog=q, v=100.0
        )
        assert cost <= scenario.budget * 1.02

    def test_warm_started_simulation_stays_level(self, setup) -> None:
        scenario, states = setup
        budget = 0.6 * scenario.budget  # binding constraint -> Q* > 0
        q = estimate_equilibrium_backlog(
            scenario.network, states, scenario.controller_rng("eq5"),
            v=100.0, budget=budget,
        )
        assert q > 0.0
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng("eq5-run"),
            v=100.0,
            budget=budget,
            z=2,
            initial_backlog=q,
        )
        result = repro.run_simulation(
            controller, scenario.fresh_states(120), budget=budget
        )
        tail = float(result.backlog[-60:].mean())
        assert tail == pytest.approx(q, rel=0.5)
        assert result.time_average_cost() <= budget * 1.1


class TestTextPlots:
    def test_sparkline_scales(self) -> None:
        line = sparkline(np.array([0.0, 0.5, 1.0]))
        assert len(line) == 3
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_sparkline_constant_series(self) -> None:
        line = sparkline(np.array([2.0, 2.0]))
        assert len(line) == 2
        assert len(set(line)) == 1

    def test_sparkline_ascii_mode(self) -> None:
        line = sparkline(np.array([0.0, 1.0]), ascii_only=True)
        assert all(c in " .:-=+*#%@" for c in line)

    def test_sparkline_empty_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            sparkline(np.array([]))

    def test_line_chart_dimensions(self) -> None:
        chart = line_chart(
            np.linspace(0, 10, 200), width=40, height=8, title="ramp"
        )
        lines = chart.splitlines()
        assert lines[0] == "ramp"
        assert len(lines) == 1 + 8 + 1  # title + rows + axis
        assert all(len(line) <= 12 + 40 for line in lines[1:])

    def test_line_chart_labels_range(self) -> None:
        # Monotone series: the resampling grid hits both extremes exactly.
        chart = line_chart(np.array([1.0, 3.0, 5.0]), width=10, height=4)
        assert "5" in chart
        assert "1" in chart

    def test_line_chart_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            line_chart(np.array([]))
        with pytest.raises(ConfigurationError):
            line_chart(np.array([1.0]), width=2)
