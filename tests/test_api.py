"""Tests for the repro.api facade."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.api import (
    CONTROLLER_NAMES,
    CellConfig,
    CheckpointConfig,
    EngineConfig,
    ObsConfig,
    RunConfig,
    make_controller,
    run,
)
from repro.baselines import FixedFrequencyController
from repro.core.controller import DPPController
from repro.exceptions import ConfigurationError
from repro.obs import NULL_TRACER, Probe
from repro.solvers.potential_game import EngineStats


def small_scenario(seed: int = 9) -> repro.Scenario:
    return repro.make_paper_scenario(
        seed=seed, config=repro.ScenarioConfig(num_devices=8)
    )


class TestMakeController:
    @pytest.mark.parametrize("name", CONTROLLER_NAMES)
    def test_every_name_builds_and_steps(self, name: str) -> None:
        scenario = small_scenario()
        controller = make_controller(name, scenario)
        record = controller.step(next(iter(scenario.fresh_states(1))))
        assert np.isfinite(record.latency)
        assert np.isfinite(record.cost)

    def test_dpp_defaults(self) -> None:
        controller = make_controller("dpp", small_scenario())
        assert isinstance(controller, DPPController)
        assert controller.z == 3
        assert controller.p2a_solver is None

    def test_bdma_alias_honours_explicit_z(self) -> None:
        controller = make_controller("bdma", small_scenario(), z=5)
        assert isinstance(controller, DPPController)
        assert controller.z == 5

    @pytest.mark.parametrize("name", ("mcba", "ropt", "greedy"))
    def test_baselines_force_single_round(self, name: str) -> None:
        controller = make_controller(name, small_scenario(), z=4)
        assert isinstance(controller, DPPController)
        assert controller.z == 1
        assert controller.p2a_solver is not None

    def test_fixed_builds_fixed_frequency_controller(self) -> None:
        controller = make_controller("fixed", small_scenario(), fraction=0.25)
        assert isinstance(controller, FixedFrequencyController)
        assert controller.fraction == 0.25

    def test_unknown_name_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown controller"):
            make_controller("gurobi", small_scenario())

    def test_scenario_or_explicit_parts_required(self) -> None:
        with pytest.raises(ConfigurationError, match="needs a scenario"):
            make_controller("dpp")

    def test_scenarioless_construction(self) -> None:
        scenario = small_scenario()
        controller = make_controller(
            "dpp",
            network=scenario.network,
            rng=np.random.default_rng(0),
            budget=1.0,
        )
        assert isinstance(controller, DPPController)
        state = repro.SlotState(
            t=0,
            cycles=np.full(8, 100e6),
            bits=np.full(8, 5e6),
            spectral_efficiency=np.full(
                (8, scenario.network.num_base_stations), 20.0
            ),
            price=40e-6,
        )
        assert np.isfinite(controller.step(state).latency)

    def test_rng_label_reproduces_manual_stream(self) -> None:
        scenario_a = small_scenario()
        scenario_b = small_scenario()
        facade = make_controller("dpp", scenario_a, rng_label="cli")
        manual = repro.DPPController(
            scenario_b.network,
            scenario_b.controller_rng("cli"),
            v=100.0,
            budget=scenario_b.budget,
            z=3,
        )
        state_a = next(iter(scenario_a.fresh_states(1)))
        state_b = next(iter(scenario_b.fresh_states(1)))
        rec_a, rec_b = facade.step(state_a), manual.step(state_b)
        assert rec_a.latency == rec_b.latency
        assert np.array_equal(rec_a.assignment.server_of, rec_b.assignment.server_of)

    def test_warm_start_queue_sets_positive_backlog(self) -> None:
        controller = make_controller(
            "dpp", small_scenario(), warm_start_queue=True
        )
        assert isinstance(controller, DPPController)
        assert controller.queue.backlog >= 0.0

    def test_tracer_is_threaded_through(self) -> None:
        probe = Probe()
        controller = make_controller("dpp", small_scenario(), tracer=probe)
        assert controller.tracer is probe
        assert make_controller("dpp", small_scenario()).tracer is NULL_TRACER


class TestRun:
    @pytest.mark.parametrize("name", CONTROLLER_NAMES)
    def test_every_controller_name_runs(self, name: str) -> None:
        result = run(
            controller=name, horizon=2, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
        )
        assert result.horizon == 2
        assert result.summary().budget_satisfied is not None

    def test_accepts_prebuilt_controller(self) -> None:
        scenario = small_scenario()
        controller = make_controller("dpp", scenario)
        result = run(scenario=scenario, controller=controller, horizon=2)
        assert result.horizon == 2

    def test_identical_to_manual_wiring(self) -> None:
        scenario_a = small_scenario(31)
        facade = run(
            scenario=scenario_a, controller="dpp", horizon=3,
            rng_label="controller",
        )
        scenario_b = small_scenario(31)
        manual = repro.run_simulation(
            repro.DPPController(
                scenario_b.network,
                scenario_b.controller_rng(),
                v=100.0,
                budget=scenario_b.budget,
                z=3,
            ),
            scenario_b.fresh_states(3),
            budget=scenario_b.budget,
        )
        np.testing.assert_array_equal(facade.latency, manual.latency)
        np.testing.assert_array_equal(facade.cost, manual.cost)
        np.testing.assert_array_equal(facade.backlog, manual.backlog)

    def test_keep_records(self) -> None:
        result = run(
            controller="fixed", fraction=1.0, horizon=2, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
            keep_records=True,
        )
        assert len(result.records) == 2


class TestRunConfig:
    def test_config_matches_bare_kwargs(self) -> None:
        config = RunConfig(
            controller="dpp", horizon=3, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
        )
        via_config = run(config=config)
        via_kwargs = run(
            controller="dpp", horizon=3, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
        )
        np.testing.assert_array_equal(via_config.latency, via_kwargs.latency)
        np.testing.assert_array_equal(via_config.cost, via_kwargs.cost)

    def test_bare_kwargs_override_config(self) -> None:
        config = RunConfig(
            controller="dpp", horizon=5, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
        )
        result = run(config=config, horizon=2)
        assert result.horizon == 2

    def test_controller_params_merge_and_override(self) -> None:
        config = RunConfig(
            controller="fixed", horizon=1, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
            controller_params={"fraction": 0.25},
        )
        baseline = run(config=config)
        overridden = run(config=config, fraction=1.0)
        assert baseline.horizon == overridden.horizon == 1
        assert not np.array_equal(baseline.cost, overridden.cost)

    def test_to_dict_is_json_ready_and_feeds_manifest(self) -> None:
        import json

        config = RunConfig(
            controller="mcba",
            horizon=4,
            engine=EngineConfig(backend="numpy", state_chunk=16),
            checkpoint=CheckpointConfig(path="/tmp/ck.json", every=8),
            obs=ObsConfig(monitors=True),
            cells=CellConfig(count=2, backends=("numpy", "numpy")),
            controller_params={"iterations": 5},
        )
        plain = config.to_dict()
        assert json.loads(json.dumps(plain)) == plain
        assert plain["engine"]["backend"] == "numpy"
        assert plain["cells"]["count"] == 2
        assert plain["cells"]["backends"] == ["numpy", "numpy"]
        assert plain["controller_params"] == {"iterations": 5}
        manifest = repro.obs.RunManifest(config=plain, seed=config.seed)
        assert manifest.to_dict()["config"]["controller"] == "mcba"

    def test_controller_params_normalised_for_hashing(self) -> None:
        a = RunConfig(controller_params={"joint": True, "shuffle": False})
        b = RunConfig(controller_params={"shuffle": False, "joint": True})
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_unknown_knob_gets_did_you_mean(self) -> None:
        with pytest.raises(ConfigurationError, match="did you mean"):
            make_controller("mcba", small_scenario(), iteration=5)

    def test_unknown_knob_lists_accepted(self) -> None:
        with pytest.raises(ConfigurationError, match="accepted knobs"):
            make_controller("dpp", small_scenario(), bogus_knob=1)

    def test_prebuilt_controller_rejects_engine_backend(self) -> None:
        scenario = small_scenario()
        controller = make_controller("dpp", scenario)
        with pytest.raises(ConfigurationError, match="already built"):
            run(
                scenario=scenario, controller=controller, horizon=1,
                engine_backend="numpy",
            )

    def test_cells_conflicts_are_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="does not combine"):
            run(
                controller="dpp", horizon=2, seed=9,
                scenario_config=repro.ScenarioConfig(num_devices=8),
                cells=2, keep_records=True,
            )

    def test_one_cell_run_identical_to_unsharded(self) -> None:
        plain = run(
            controller="dpp", horizon=3, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
        )
        sharded = run(
            controller="dpp", horizon=3, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
            cells=1,
        )
        np.testing.assert_array_equal(plain.latency, sharded.latency)
        np.testing.assert_array_equal(plain.cost, sharded.cost)
        np.testing.assert_array_equal(plain.backlog, sharded.backlog)


class TestUniformSummaries:
    def test_shared_field_names(self) -> None:
        sim = run(
            controller="dpp", horizon=2, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
        ).summary()
        spec = repro.ReplicationSpec(num_devices=8, horizon=2)
        rep = repro.run_replications(spec, [1, 2]).summary()
        shared = {
            "mean_latency", "mean_cost", "mean_backlog",
            "budget_satisfied", "mean_solve_seconds",
        }
        assert shared <= set(sim.to_dict())
        assert shared <= set(rep.to_dict())
        assert rep.runs == 2

    def test_slot_record_to_dict(self) -> None:
        result = run(
            controller="dpp", horizon=1, seed=9,
            scenario_config=repro.ScenarioConfig(num_devices=8),
            keep_records=True,
        )
        record = result.records[0]
        plain = record.to_dict()
        assert plain["t"] == 0
        assert "bs_of" not in plain
        assert plain["engine_stats"]["moves"] >= 0
        rich = record.to_dict(include_arrays=True)
        assert len(rich["bs_of"]) == 8
        assert len(rich["frequencies"]) > 0

    def test_engine_stats_to_dict(self) -> None:
        stats = EngineStats(moves=1, sweeps=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plain = stats.to_dict()
        assert plain["moves"] == 1
        assert plain["sweeps"] == 2
        # The deprecated as_dict alias is gone.
        assert not hasattr(stats, "as_dict")
