"""Tests for ROPT, MCBA, greedy, and the fixed-frequency controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fixed_frequency import FixedFrequencyController
from repro.baselines.greedy import solve_p2a_greedy
from repro.baselines.mcba import mcba_p2a_solver, solve_p2a_mcba
from repro.baselines.ropt import ropt_p2a_solver, solve_p2a_ropt
from repro.core.latency import optimal_total_latency
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace

from conftest import make_tiny_network, make_tiny_state
from helpers import brute_force_p2a


@pytest.fixture
def setup():
    network = make_tiny_network()
    state = make_tiny_state()
    space = StrategySpace(network, state.coverage())
    frequencies = np.array([2.0, 3.0, 2.5])
    return network, state, space, frequencies


class TestROPT:
    def test_feasible(self, setup) -> None:
        _, _, space, _ = setup
        rng = np.random.default_rng(0)
        for _ in range(10):
            assignment = solve_p2a_ropt(space, rng)
            for i in range(assignment.num_devices):
                assert space.contains(
                    i, int(assignment.bs_of[i]), int(assignment.server_of[i])
                )

    def test_solver_interface(self, setup) -> None:
        network, state, space, frequencies = setup
        solver = ropt_p2a_solver()
        assignment = solver(
            network, state, space, frequencies,
            np.random.default_rng(1), initial=None,
        )
        assert assignment.num_devices == 4


class TestMCBA:
    def test_improves_over_random_start(self, setup) -> None:
        network, state, space, frequencies = setup
        rng = np.random.default_rng(2)
        start = solve_p2a_ropt(space, rng)
        start_latency = optimal_total_latency(network, state, start, frequencies)
        result = solve_p2a_mcba(
            network, state, space, frequencies, np.random.default_rng(3),
            initial=start, iterations=2_000,
        )
        assert result.total_latency <= start_latency + 1e-9

    def test_reports_best_not_last(self, setup) -> None:
        network, state, space, frequencies = setup
        result = solve_p2a_mcba(
            network, state, space, frequencies, np.random.default_rng(4),
            iterations=1_500,
        )
        recomputed = optimal_total_latency(
            network, state, result.assignment, frequencies
        )
        assert result.total_latency == pytest.approx(recomputed, rel=1e-9)

    def test_near_optimal_with_enough_iterations(self, setup) -> None:
        network, state, space, frequencies = setup
        _, optimum = brute_force_p2a(network, state, space, frequencies)
        result = solve_p2a_mcba(
            network, state, space, frequencies, np.random.default_rng(5),
            iterations=5_000,
        )
        assert result.total_latency <= 1.15 * optimum

    def test_accepts_some_uphill_moves_at_high_temperature(self, setup) -> None:
        network, state, space, frequencies = setup
        result = solve_p2a_mcba(
            network, state, space, frequencies, np.random.default_rng(6),
            iterations=500, initial_temperature_fraction=10.0, cooling=1.0,
        )
        # With a huge constant temperature, almost all proposals accept.
        assert result.accepted > 0.5 * result.iterations

    def test_invalid_parameters_rejected(self, setup) -> None:
        network, state, space, frequencies = setup
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            solve_p2a_mcba(network, state, space, frequencies, rng, iterations=0)
        with pytest.raises(ConfigurationError):
            solve_p2a_mcba(network, state, space, frequencies, rng, cooling=0.0)
        with pytest.raises(ConfigurationError):
            solve_p2a_mcba(
                network, state, space, frequencies, rng,
                initial_temperature_fraction=0.0,
            )

    def test_solver_factory(self, setup) -> None:
        network, state, space, frequencies = setup
        solver = mcba_p2a_solver(iterations=200)
        assignment = solver(
            network, state, space, frequencies,
            np.random.default_rng(7), initial=None,
        )
        assert assignment.num_devices == 4


class TestGreedy:
    def test_joint_feasible_and_reasonable(self, setup) -> None:
        network, state, space, frequencies = setup
        assignment = solve_p2a_greedy(network, state, space, frequencies)
        for i in range(4):
            assert space.contains(
                i, int(assignment.bs_of[i]), int(assignment.server_of[i])
            )
        _, optimum = brute_force_p2a(network, state, space, frequencies)
        value = optimal_total_latency(network, state, assignment, frequencies)
        assert value <= 2.0 * optimum  # one-pass greedy stays in the ballpark

    def test_decoupled_variant_feasible_and_comparable(self, setup) -> None:
        # Joint vs decoupled is studied statistically in the ablation
        # bench; here we only require feasibility and the same ballpark
        # (on tiny instances either variant can win by luck).
        network, state, space, frequencies = setup
        for seed in range(10):
            order = np.random.default_rng(seed).permutation(4)
            decoupled = solve_p2a_greedy(
                network, state, space, frequencies, joint=False, order=order
            )
            joint = solve_p2a_greedy(
                network, state, space, frequencies, joint=True, order=order
            )
            for i in range(4):
                assert space.contains(
                    i, int(decoupled.bs_of[i]), int(decoupled.server_of[i])
                )
            d = optimal_total_latency(network, state, decoupled, frequencies)
            j = optimal_total_latency(network, state, joint, frequencies)
            assert j <= 1.5 * d

    def test_joint_at_least_matches_decoupled_at_scale(
        self, small_scenario
    ) -> None:
        network = small_scenario.network
        state = next(iter(small_scenario.fresh_states(1)))
        space = StrategySpace(network, state.coverage())
        frequencies = network.freq_max.copy()
        joint_vals, decoupled_vals = [], []
        for seed in range(20):
            order = np.random.default_rng(seed).permutation(network.num_devices)
            joint = solve_p2a_greedy(
                network, state, space, frequencies, joint=True, order=order
            )
            decoupled = solve_p2a_greedy(
                network, state, space, frequencies, joint=False, order=order
            )
            joint_vals.append(
                optimal_total_latency(network, state, joint, frequencies)
            )
            decoupled_vals.append(
                optimal_total_latency(network, state, decoupled, frequencies)
            )
        assert np.mean(joint_vals) <= 1.02 * np.mean(decoupled_vals)

    def test_order_validation(self, setup) -> None:
        network, state, space, frequencies = setup
        with pytest.raises(ConfigurationError):
            solve_p2a_greedy(
                network, state, space, frequencies, order=np.array([0, 0, 1, 2])
            )


class TestFixedFrequencyController:
    def test_frequencies_pinned(self) -> None:
        network = make_tiny_network()
        for fraction, expected in ((0.0, 1.8), (1.0, 3.6), (0.5, 2.7)):
            controller = FixedFrequencyController(
                network, np.random.default_rng(0), fraction=fraction, budget=10.0
            )
            record = controller.step(make_tiny_state())
            np.testing.assert_allclose(record.frequencies, expected)

    def test_queue_tracks_but_does_not_influence(self) -> None:
        network = make_tiny_network()
        controller = FixedFrequencyController(
            network, np.random.default_rng(0), fraction=1.0, budget=0.0
        )
        r1 = controller.step(make_tiny_state(t=0))
        r2 = controller.step(make_tiny_state(t=1))
        assert r2.backlog_after > r1.backlog_after > 0.0
        np.testing.assert_allclose(r1.frequencies, r2.frequencies)

    def test_reset(self) -> None:
        network = make_tiny_network()
        controller = FixedFrequencyController(
            network, np.random.default_rng(0), fraction=0.5, budget=0.0
        )
        controller.step(make_tiny_state())
        controller.reset()
        assert controller.queue.backlog == 0.0

    def test_invalid_fraction_rejected(self) -> None:
        network = make_tiny_network()
        with pytest.raises(ConfigurationError):
            FixedFrequencyController(
                network, np.random.default_rng(0), fraction=1.5, budget=0.0
            )
