"""Tests for the exact branch-and-bound P2-A solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.baselines.branch_and_bound import (
    build_p2a_problem,
    solve_p2a_exact,
    verify_against_game,
)
from repro.baselines.lower_bounds import p2a_fractional_bound, p2a_lower_bound
from repro.core.cgba import solve_p2a_cgba
from repro.core.latency import optimal_total_latency
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace

from conftest import make_tiny_network, make_tiny_state
from helpers import brute_force_p2a


@pytest.fixture
def setup():
    network = make_tiny_network()
    state = make_tiny_state()
    space = StrategySpace(network, state.coverage())
    frequencies = np.array([2.0, 3.0, 2.5])
    return network, state, space, frequencies


class TestProblemTranslation:
    def test_objective_matches_latency(self, setup) -> None:
        network, state, space, frequencies = setup
        problem = build_p2a_problem(network, state, space, frequencies)
        rng = np.random.default_rng(0)
        for _ in range(5):
            bs_of, server_of = space.random_assignment(rng)
            assignment = repro.Assignment(bs_of=bs_of, server_of=server_of)
            # Translate the assignment into option indices by matching
            # the resource layout (access k, fronthaul K+k, compute 2K+n).
            choice = []
            for i in range(4):
                found = None
                for j, res in enumerate(problem.options[i]):
                    if res[0] == bs_of[i] and res[2] == 2 * 2 + server_of[i]:
                        found = j
                choice.append(found)
            assert None not in choice
            expected = optimal_total_latency(network, state, assignment, frequencies)
            assert problem.total_cost(choice) == pytest.approx(expected, rel=1e-12)


class TestExactness:
    def test_matches_brute_force_on_tiny(self, setup) -> None:
        network, state, space, frequencies = setup
        _, optimum = brute_force_p2a(network, state, space, frequencies)
        result = solve_p2a_exact(network, state, space, frequencies)
        assert result.optimal
        assert result.objective == pytest.approx(optimum, rel=1e-12)
        assert result.lower_bound == pytest.approx(result.objective)
        value = verify_against_game(
            network, state, space, frequencies, result.assignment
        )
        assert value == pytest.approx(result.objective, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_matches_brute_force_on_random_small(self, seed: int) -> None:
        scenario = repro.make_paper_scenario(
            seed=seed,
            config=repro.ScenarioConfig(num_devices=5),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
        )
        network = scenario.network
        state = next(iter(scenario.fresh_states(1)))
        space = StrategySpace(network, state.coverage())
        frequencies = network.freq_max.copy()
        _, optimum = brute_force_p2a(network, state, space, frequencies)
        result = solve_p2a_exact(network, state, space, frequencies)
        assert result.optimal
        assert result.objective == pytest.approx(optimum, rel=1e-9)

    def test_never_worse_than_cgba_incumbent(self, setup) -> None:
        network, state, space, frequencies = setup
        cgba = solve_p2a_cgba(
            network, state, space, frequencies, np.random.default_rng(0)
        )
        result = solve_p2a_exact(
            network, state, space, frequencies, incumbent=cgba.assignment
        )
        assert result.objective <= cgba.total_latency + 1e-12


class TestNodeBudget:
    def test_exhaustion_returns_feasible_incumbent(self, setup) -> None:
        network, state, space, frequencies = setup
        result = solve_p2a_exact(
            network, state, space, frequencies, node_limit=2
        )
        assert not result.optimal
        assert np.isfinite(result.objective)
        assert result.lower_bound <= result.objective + 1e-12
        value = verify_against_game(
            network, state, space, frequencies, result.assignment
        )
        assert value == pytest.approx(result.objective, rel=1e-9)

    def test_invalid_node_limit(self, setup) -> None:
        network, state, space, frequencies = setup
        with pytest.raises(ConfigurationError):
            solve_p2a_exact(network, state, space, frequencies, node_limit=0)


class TestLowerBounds:
    def test_congestion_free_below_optimum(self, setup) -> None:
        network, state, space, frequencies = setup
        _, optimum = brute_force_p2a(network, state, space, frequencies)
        assert p2a_lower_bound(network, state, space, frequencies) <= optimum + 1e-12

    def test_fractional_bound_between_free_bound_and_optimum(self, setup) -> None:
        network, state, space, frequencies = setup
        _, optimum = brute_force_p2a(network, state, space, frequencies)
        free = p2a_lower_bound(network, state, space, frequencies)
        frac = p2a_fractional_bound(network, state, space, frequencies)
        assert frac.lower_bound <= optimum + 1e-9
        assert frac.lower_bound >= free - 1e-9  # tighter than congestion-free

    def test_fractional_bound_is_tight_at_scale(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=11, config=repro.ScenarioConfig(num_devices=40)
        )
        network = scenario.network
        state = next(iter(scenario.fresh_states(1)))
        space = StrategySpace(network, state.coverage())
        frequencies = network.freq_max.copy()
        cgba = solve_p2a_cgba(
            network, state, space, frequencies, np.random.default_rng(0)
        )
        frac = p2a_fractional_bound(
            network, state, space, frequencies, max_iter=1_500
        )
        # The integrality gap closes with instance size; the certified
        # ratio should already be small at I=40.
        assert cgba.total_latency / frac.lower_bound < 1.2
