"""Tests for budget schedules and their controller integration."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.budget import (
    ConstantBudget,
    PeriodicBudget,
    as_schedule,
    demand_weighted_budget,
)
from repro.exceptions import ConfigurationError
from repro.workload.traces import diurnal_profile

from conftest import make_tiny_network, make_tiny_state


class TestSchedules:
    def test_constant(self) -> None:
        schedule = ConstantBudget(3.0)
        assert schedule.budget_at(0) == 3.0
        assert schedule.budget_at(999) == 3.0
        assert schedule.average == 3.0

    def test_constant_negative_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            ConstantBudget(-1.0)

    def test_periodic_wraps_and_averages(self) -> None:
        schedule = PeriodicBudget(np.array([1.0, 3.0]))
        assert schedule.budget_at(0) == 1.0
        assert schedule.budget_at(3) == 3.0
        assert schedule.average == pytest.approx(2.0)
        assert schedule.period == 2

    def test_periodic_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            PeriodicBudget(np.array([]))
        with pytest.raises(ConfigurationError):
            PeriodicBudget(np.array([1.0, -1.0]))

    def test_as_schedule_coercion(self) -> None:
        assert isinstance(as_schedule(2.0), ConstantBudget)
        schedule = PeriodicBudget(np.array([1.0]))
        assert as_schedule(schedule) is schedule


class TestDemandWeighted:
    def test_average_preserved_exactly(self) -> None:
        profile = diurnal_profile()
        for strength in (0.0, 0.5, 1.0, 3.0):
            schedule = demand_weighted_budget(
                2.0, profile, strength=strength
            )
            assert schedule.average == pytest.approx(2.0, rel=1e-12)

    def test_zero_strength_is_constant(self) -> None:
        schedule = demand_weighted_budget(2.0, diurnal_profile(), strength=0.0)
        values = [schedule.budget_at(t) for t in range(24)]
        np.testing.assert_allclose(values, 2.0)

    def test_tracks_profile_shape(self) -> None:
        profile = diurnal_profile()
        schedule = demand_weighted_budget(2.0, profile, strength=1.0)
        values = np.array([schedule.budget_at(t) for t in range(24)])
        assert int(np.argmax(values)) == int(np.argmax(profile))
        assert int(np.argmin(values)) == int(np.argmin(profile))

    def test_floor_respected(self) -> None:
        spiky = np.ones(24)
        spiky[12] = 100.0
        schedule = demand_weighted_budget(
            2.0, spiky, strength=1.0, floor_fraction=0.25
        )
        values = np.array([schedule.budget_at(t) for t in range(24)])
        # Renormalisation scales the floored values but never below
        # something proportional to the floor.
        assert values.min() > 0.0
        assert schedule.average == pytest.approx(2.0, rel=1e-12)

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            demand_weighted_budget(0.0, diurnal_profile())
        with pytest.raises(ConfigurationError):
            demand_weighted_budget(1.0, diurnal_profile(), strength=-1.0)
        with pytest.raises(ConfigurationError):
            demand_weighted_budget(1.0, np.array([-1.0, 1.0]))


class TestControllerIntegration:
    def test_float_budget_still_works(self) -> None:
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        assert controller.budget == 20.0
        record = controller.step(make_tiny_state())
        assert record.theta == pytest.approx(record.cost - 20.0)

    def test_schedule_budget_drives_theta_per_slot(self) -> None:
        network = make_tiny_network()
        schedule = PeriodicBudget(np.array([10.0, 30.0]))
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=schedule, z=1
        )
        assert controller.budget == pytest.approx(20.0)
        r0 = controller.step(make_tiny_state(t=0))
        r1 = controller.step(make_tiny_state(t=1))
        assert r0.theta == pytest.approx(r0.cost - 10.0)
        assert r1.theta == pytest.approx(r1.cost - 30.0)

    def test_pacing_shifts_spend_toward_high_budget_slots(self) -> None:
        # Two-slot world with equal prices: the controller under
        # pressure runs faster in the high-budget slot.
        network = make_tiny_network()
        schedule = PeriodicBudget(np.array([0.0, 1e9]))
        controller = repro.DPPController(
            network,
            np.random.default_rng(0),
            v=50.0,
            budget=schedule,
            z=1,
            initial_backlog=100.0,
        )
        r_low = controller.step(make_tiny_state(t=0))
        controller.queue.reset(100.0)
        r_high = controller.step(make_tiny_state(t=1))
        # Same backlog, same state: identical frequencies (theta differs
        # only by the constant budget, which P2-B's argmin ignores), but
        # the queue drains in the generous slot and grows in the tight one.
        assert r_low.theta > 0.0
        assert r_high.theta < 0.0
