"""Tests for checkpoint/resume (repro.sim.checkpoint)."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.core.resilience import ResiliencePolicy, SolverChaos
from repro.exceptions import CheckpointError
from repro.sim.checkpoint import RunCheckpoint, run_checkpointed
from repro.sim.faults import (
    FaultPlan,
    FronthaulDegradation,
    MarkovOutages,
    PriceFeedDropouts,
    ScriptedIncident,
    ServerOutages,
)

HORIZON = 24
CONFIG = repro.ScenarioConfig(num_devices=10)


def make_scenario(seed: int = 19, *, faulted: bool = False) -> repro.Scenario:
    plan = None
    if faulted:
        plan = FaultPlan(
            faults=(
                ServerOutages(MarkovOutages(mtbf_slots=15.0, mttr_slots=3.0)),
                FronthaulDegradation(mtbf_slots=12.0, mttr_slots=4.0, factor=0.4),
                PriceFeedDropouts(mtbf_slots=10.0, mttr_slots=3.0),
            ),
            schedule=[
                ScriptedIncident(at=8, duration=4, kind="price_freeze")
            ],
        )
    return repro.make_paper_scenario(
        seed=seed, config=CONFIG, fault_plan=plan
    )


def make_controller(scenario: repro.Scenario) -> repro.DPPController:
    return repro.DPPController(
        scenario.network,
        scenario.controller_rng("ckpt"),
        v=100.0,
        budget=scenario.budget,
        z=1,
        resilience=ResiliencePolicy(
            chaos=SolverChaos(failure_rate=0.1, seed=2)
        ),
    )


def plain_run(*, faulted: bool = False) -> repro.SimulationResult:
    scenario = make_scenario(faulted=faulted)
    states = scenario.fresh_compiled_states(HORIZON)
    return repro.run_simulation(
        make_controller(scenario), states, budget=scenario.budget
    )


class _Kill(Exception):
    pass


def killer_at(slot: int):
    seen = {"n": 0}

    def killer(record) -> None:
        seen["n"] += 1
        if seen["n"] == slot:
            raise _Kill

    return killer


def assert_same_run(a: repro.SimulationResult, b: repro.SimulationResult) -> None:
    """Bit-identical trajectories: exact equality, no tolerance."""
    assert np.array_equal(a.latency, b.latency)
    assert np.array_equal(a.cost, b.cost)
    assert np.array_equal(a.backlog, b.backlog)
    assert a.backlog[-1] == b.backlog[-1]


class TestUninterrupted:
    @pytest.mark.parametrize("faulted", [False, True])
    def test_checkpointed_matches_plain(self, tmp_path, faulted) -> None:
        scenario = make_scenario(faulted=faulted)
        checkpointed = run_checkpointed(
            scenario,
            make_controller(scenario),
            horizon=HORIZON,
            path=tmp_path / "run.ckpt",
            every=7,
        )
        assert_same_run(plain_run(faulted=faulted), checkpointed)

    def test_snapshot_lands_on_disk(self, tmp_path) -> None:
        path = tmp_path / "run.ckpt"
        scenario = make_scenario()
        run_checkpointed(
            scenario, make_controller(scenario),
            horizon=HORIZON, path=path, every=8,
        )
        snapshot = RunCheckpoint.load(path)
        assert snapshot.completed == HORIZON
        assert snapshot.horizon == HORIZON
        assert len(snapshot.metrics["latency"]) == HORIZON
        # The file is plain JSON: inspectable and diffable.
        assert json.loads(path.read_text())["version"] == 1


class TestResume:
    @pytest.mark.parametrize("faulted", [False, True])
    def test_killed_run_resumes_bit_identically(self, tmp_path, faulted) -> None:
        """The acceptance criterion: kill mid-run, resume in fresh
        objects, and the full-horizon trajectories plus the final
        virtual queue match the uninterrupted run exactly."""
        path = tmp_path / "run.ckpt"
        scenario = make_scenario(faulted=faulted)
        with pytest.raises(_Kill):
            run_checkpointed(
                scenario,
                make_controller(scenario),
                horizon=HORIZON,
                path=path,
                every=6,
                on_slot=killer_at(HORIZON // 2 + 2),
            )
        snapshot = RunCheckpoint.load(path)
        assert 0 < snapshot.completed < HORIZON
        fresh = make_scenario(faulted=faulted)  # brand-new objects
        resumed = run_checkpointed(
            fresh,
            make_controller(fresh),
            horizon=HORIZON,
            path=path,
            every=6,
            resume=True,
        )
        assert_same_run(plain_run(faulted=faulted), resumed)

    def test_resume_without_snapshot_starts_fresh(self, tmp_path) -> None:
        scenario = make_scenario()
        result = run_checkpointed(
            scenario,
            make_controller(scenario),
            horizon=HORIZON,
            path=tmp_path / "missing.ckpt",
            every=8,
            resume=True,
        )
        assert_same_run(plain_run(), result)

    def test_mismatched_config_is_refused(self, tmp_path) -> None:
        path = tmp_path / "run.ckpt"
        scenario = make_scenario()
        run_checkpointed(
            scenario, make_controller(scenario),
            horizon=HORIZON, path=path, every=8,
        )
        other = make_scenario(seed=99)
        with pytest.raises(CheckpointError, match="different run"):
            run_checkpointed(
                other, make_controller(other),
                horizon=HORIZON, path=path, every=8, resume=True,
            )

    def test_mismatched_horizon_is_refused(self, tmp_path) -> None:
        path = tmp_path / "run.ckpt"
        scenario = make_scenario()
        run_checkpointed(
            scenario, make_controller(scenario),
            horizon=HORIZON, path=path, every=8,
        )
        snapshot = RunCheckpoint.load(path)
        # Same config hash would require the same horizon; fake a stale
        # snapshot by rewriting only the horizon fields.
        snapshot.horizon = HORIZON + 8
        snapshot.write(path)
        with pytest.raises(CheckpointError):
            run_checkpointed(
                scenario, make_controller(scenario),
                horizon=HORIZON + 8, path=path, every=8, resume=True,
            )


class TestGuards:
    def test_bad_interval_rejected(self, tmp_path) -> None:
        scenario = make_scenario()
        with pytest.raises(CheckpointError):
            run_checkpointed(
                scenario, make_controller(scenario),
                horizon=4, path=tmp_path / "x.ckpt", every=0,
            )

    def test_controller_without_state_dict_rejected(self, tmp_path) -> None:
        scenario = make_scenario()
        controller = repro.baselines.FixedFrequencyController(
            scenario.network, np.random.default_rng(0),
            fraction=0.5, budget=scenario.budget,
        )
        if hasattr(controller, "state_dict"):
            pytest.skip("baseline grew checkpoint support")
        with pytest.raises(CheckpointError, match="state_dict"):
            run_checkpointed(
                scenario, controller,
                horizon=4, path=tmp_path / "x.ckpt",
            )

    def test_corrupt_snapshot_is_a_checkpoint_error(self, tmp_path) -> None:
        path = tmp_path / "bad.ckpt"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            RunCheckpoint.load(path)
        path.write_text('{"foo": 1}')
        with pytest.raises(CheckpointError, match="not a run checkpoint"):
            RunCheckpoint.load(path)


class TestApiIntegration:
    def test_api_run_checkpoint_and_resume(self, tmp_path) -> None:
        path = tmp_path / "api.ckpt"
        kwargs = dict(
            controller="dpp", horizon=12, seed=23, z=1,
            scenario_config=CONFIG,
        )
        baseline = repro.api.run(**kwargs)
        checkpointed = repro.api.run(
            **kwargs, checkpoint=str(path), checkpoint_every=5
        )
        assert np.array_equal(baseline.latency, checkpointed.latency)
        assert path.exists()
        resumed = repro.api.run(
            **kwargs, checkpoint=str(path), checkpoint_every=5, resume=True
        )
        assert np.array_equal(baseline.backlog, resumed.backlog)
