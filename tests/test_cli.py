"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self) -> None:
        args = build_parser().parse_args(["simulate"])
        assert args.devices == 50
        assert args.solver == "bdma"
        assert args.v == 100.0
        assert args.horizon == 48

    def test_unknown_solver_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--solver", "gurobi"])


class TestCommands:
    def test_info(self, capsys) -> None:
        code = main(["info", "--devices", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro 1.0.0" in out
        assert "I=10" in out
        assert "R_F" in out

    def test_simulate_small(self, capsys, tmp_path) -> None:
        out_file = tmp_path / "run.npz"
        code = main(
            [
                "simulate",
                "--devices", "8",
                "--horizon", "3",
                "--z", "1",
                "--output", str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out[out.index("{"): out.index("}") + 1])
        assert summary["horizon"] == 3
        assert out_file.exists()

    def test_simulate_with_chart_and_ropt(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3",
             "--solver", "ropt", "--chart"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "virtual queue backlog" in out

    def test_experiment_list(self, capsys) -> None:
        code = main(["experiment", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4" in out
        assert "ablation-freq" in out

    def test_experiment_without_name_lists(self, capsys) -> None:
        code = main(["experiment"])
        assert code == 0
        assert "fig2" in capsys.readouterr().out

    def test_experiment_unknown_name(self, capsys) -> None:
        code = main(["experiment", "fig99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_fig3_runs(self, capsys) -> None:
        code = main(["experiment", "fig3", "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 3" in out
        assert "verified" in out

    def test_equilibrium(self, capsys) -> None:
        code = main(
            ["equilibrium", "--devices", "8", "--budget-fraction", "0.3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "equilibrium Q*" in out


class TestObservabilityFlags:
    def test_simulate_fixed_solver(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "2",
             "--solver", "fixed", "--fraction", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "solver fixed" in out

    def test_profile_prints_phase_table(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3", "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for phase in ("slot", "slot/bdma/p2a", "slot/queue"):
            assert phase in out
        assert "p50 ms" in out and "p95 ms" in out
        assert "bdma.rounds" in out

    def test_trace_writes_jsonl_and_manifest(self, capsys, tmp_path) -> None:
        trace = tmp_path / "run.jsonl"
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3",
             "--seed", "5", "--trace", str(trace)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace written to {trace}" in out

        from repro.obs import read_jsonl

        events = read_jsonl(trace)
        kinds = {e["kind"] for e in events}
        assert {"span", "counter", "event"} <= kinds
        slots = [e for e in events if e["kind"] == "event"]
        assert len(slots) == 3

        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["seed"] == 5
        assert manifest["config"]["horizon"] == 3
        assert manifest["config_hash"]
        assert manifest["wall_clock_seconds"] >= 0.0

    def test_profile_without_trace_writes_nothing(self, capsys, tmp_path) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "2", "--profile"]
        )
        assert code == 0
        assert list(tmp_path.iterdir()) == []
