"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self) -> None:
        args = build_parser().parse_args(["simulate"])
        assert args.devices == 50
        assert args.solver == "bdma"
        assert args.v == 100.0
        assert args.horizon == 48

    def test_unknown_solver_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--solver", "gurobi"])


class TestCommands:
    def test_info(self, capsys) -> None:
        code = main(["info", "--devices", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro 1.0.0" in out
        assert "I=10" in out
        assert "R_F" in out

    def test_simulate_small(self, capsys, tmp_path) -> None:
        out_file = tmp_path / "run.npz"
        code = main(
            [
                "simulate",
                "--devices", "8",
                "--horizon", "3",
                "--z", "1",
                "--output", str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out[out.index("{"): out.index("}") + 1])
        assert summary["horizon"] == 3
        assert out_file.exists()

    def test_simulate_with_chart_and_ropt(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3",
             "--solver", "ropt", "--chart"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "virtual queue backlog" in out

    def test_experiment_list(self, capsys) -> None:
        code = main(["experiment", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4" in out
        assert "ablation-freq" in out

    def test_experiment_without_name_lists(self, capsys) -> None:
        code = main(["experiment"])
        assert code == 0
        assert "fig2" in capsys.readouterr().out

    def test_experiment_unknown_name(self, capsys) -> None:
        code = main(["experiment", "fig99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_fig3_runs(self, capsys) -> None:
        code = main(["experiment", "fig3", "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 3" in out
        assert "verified" in out

    def test_equilibrium(self, capsys) -> None:
        code = main(
            ["equilibrium", "--devices", "8", "--budget-fraction", "0.3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "equilibrium Q*" in out
