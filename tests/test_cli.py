"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self) -> None:
        args = build_parser().parse_args(["simulate"])
        assert args.devices == 50
        assert args.solver == "bdma"
        assert args.v == 100.0
        assert args.horizon == 48

    def test_unknown_solver_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--solver", "gurobi"])


class TestCommands:
    def test_info(self, capsys) -> None:
        code = main(["info", "--devices", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro 1.0.0" in out
        assert "I=10" in out
        assert "R_F" in out

    def test_simulate_small(self, capsys, tmp_path) -> None:
        out_file = tmp_path / "run.npz"
        code = main(
            [
                "simulate",
                "--devices", "8",
                "--horizon", "3",
                "--z", "1",
                "--output", str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out[out.index("{"): out.index("}") + 1])
        assert summary["horizon"] == 3
        assert out_file.exists()

    def test_simulate_with_chart_and_ropt(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3",
             "--solver", "ropt", "--chart"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "virtual queue backlog" in out

    def test_experiment_list(self, capsys) -> None:
        code = main(["experiment", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4" in out
        assert "ablation-freq" in out

    def test_experiment_without_name_lists(self, capsys) -> None:
        code = main(["experiment"])
        assert code == 0
        assert "fig2" in capsys.readouterr().out

    def test_experiment_unknown_name(self, capsys) -> None:
        code = main(["experiment", "fig99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_fig3_runs(self, capsys) -> None:
        code = main(["experiment", "fig3", "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 3" in out
        assert "verified" in out

    def test_equilibrium(self, capsys) -> None:
        code = main(
            ["equilibrium", "--devices", "8", "--budget-fraction", "0.3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "equilibrium Q*" in out


class TestObservabilityFlags:
    def test_simulate_fixed_solver(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "2",
             "--solver", "fixed", "--fraction", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "solver fixed" in out

    def test_profile_prints_phase_table(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3", "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for phase in ("slot", "slot/bdma/p2a", "slot/queue"):
            assert phase in out
        assert "p50 ms" in out and "p95 ms" in out
        assert "bdma.rounds" in out

    def test_trace_writes_jsonl_and_manifest(self, capsys, tmp_path) -> None:
        trace = tmp_path / "run.jsonl"
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3",
             "--seed", "5", "--trace", str(trace)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace written to {trace}" in out

        from repro.obs import read_jsonl

        events = read_jsonl(trace)
        kinds = {e["kind"] for e in events}
        assert {"span", "counter", "event"} <= kinds
        slots = [e for e in events if e["kind"] == "event"]
        assert len(slots) == 3

        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["seed"] == 5
        assert manifest["config"]["horizon"] == 3
        assert manifest["config_hash"]
        assert manifest["wall_clock_seconds"] >= 0.0

    def test_profile_without_trace_writes_nothing(self, capsys, tmp_path) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "2", "--profile"]
        )
        assert code == 0
        assert list(tmp_path.iterdir()) == []


class TestMonitorAndDashboardFlags:
    def test_monitors_print_health_report(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3", "--z", "1",
             "--monitors"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "health: OK" in out
        for monitor in ("queue_stability", "feasibility", "budget",
                        "guarantee", "anomaly"):
            assert monitor in out

    def test_dashboard_renders_frames(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3", "--z", "1",
             "--dashboard", "--ascii"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "slot 2" in out
        assert "backlog" in out
        # --ascii keeps the whole stream 7-bit clean.
        out.encode("ascii")
        # The health report follows the final frame.
        assert "health: OK" in out

    def test_monitor_alerts_reach_the_trace(self, capsys, tmp_path) -> None:
        trace = tmp_path / "run.jsonl"
        code = main(
            ["simulate", "--devices", "8", "--horizon", "3", "--z", "1",
             "--monitors", "--trace", str(trace)]
        )
        assert code == 0
        from repro.obs import load_trace

        # A clean run records zero alerts but still loads as a trace.
        assert load_trace(trace).alerts == []


class TestTraceCommands:
    def _record(self, tmp_path, name: str, horizon: int = 3):
        path = tmp_path / name
        assert main(
            ["simulate", "--devices", "8", "--horizon", str(horizon),
             "--z", "1", "--seed", "5", "--trace", str(path)]
        ) == 0
        return path

    def test_summary(self, capsys, tmp_path) -> None:
        path = self._record(tmp_path, "run.jsonl")
        capsys.readouterr()
        code = main(["trace", "summary", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 slots" in out
        assert "mean_latency" in out
        assert "slot/bdma" in out

    def test_diff_identical_exits_zero(self, capsys, tmp_path) -> None:
        a = self._record(tmp_path, "a.jsonl")
        b = self._record(tmp_path, "b.jsonl")
        capsys.readouterr()
        code = main(["trace", "diff", str(a), str(b), "--ignore-times"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions" in out

    def test_diff_regression_exits_one(self, capsys, tmp_path) -> None:
        import json as _json

        a = self._record(tmp_path, "a.jsonl")
        b = tmp_path / "b.jsonl"
        events = []
        for line in a.read_text().splitlines():
            event = _json.loads(line)
            if event["kind"] == "event" and event["name"] == "slot":
                event["data"]["cost"] *= 2.0
            events.append(event)
        b.write_text("\n".join(_json.dumps(e) for e in events) + "\n")
        capsys.readouterr()
        code = main(["trace", "diff", str(a), str(b), "--ignore-times"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out
        assert "mean_cost" in out

    def test_trace_requires_a_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestCrashSalvage:
    """A dying simulate run must still flush its trace and manifest."""

    ARGS = ["simulate", "--devices", "8", "--horizon", "6", "--z", "1",
            "--seed", "5"]

    def _die_after(self, monkeypatch, exc: type, slots: int) -> None:
        import repro as repro_pkg

        original = repro_pkg.run_simulation

        def dying(controller, states, **kwargs):
            seen = {"n": 0}
            user_on_slot = kwargs.pop("on_slot", None)

            def on_slot(record):
                if user_on_slot is not None:
                    user_on_slot(record)
                seen["n"] += 1
                if seen["n"] >= slots:
                    raise exc("boom")

            return original(controller, states, on_slot=on_slot, **kwargs)

        monkeypatch.setattr(repro_pkg, "run_simulation", dying)

    def test_interrupt_exits_130_and_salvages(
        self, monkeypatch, capsys, tmp_path
    ) -> None:
        self._die_after(monkeypatch, KeyboardInterrupt, 2)
        trace = tmp_path / "run.jsonl"
        code = main(self.ARGS + ["--trace", str(trace)])
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted" in captured.err
        assert f"partial trace written to {trace}" in captured.err

        from repro.obs import read_jsonl

        slots = [
            e for e in read_jsonl(trace)
            if e["kind"] == "event" and e["name"] == "slot"
        ]
        assert len(slots) == 2  # the decided slots survived the death
        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["status"] == "interrupted"
        assert manifest["seed"] == 5

    def test_crash_exits_1_and_stamps_the_manifest(
        self, monkeypatch, capsys, tmp_path
    ) -> None:
        self._die_after(monkeypatch, RuntimeError, 1)
        trace = tmp_path / "run.jsonl"
        code = main(self.ARGS + ["--trace", str(trace)])
        captured = capsys.readouterr()
        assert code == 1
        assert "RuntimeError" in captured.err  # traceback reaches stderr
        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["status"] == "crashed"

    def test_interrupt_without_trace_still_exits_130(
        self, monkeypatch, capsys, tmp_path
    ) -> None:
        self._die_after(monkeypatch, KeyboardInterrupt, 1)
        assert main(self.ARGS) == 130
        assert list(tmp_path.iterdir()) == []

    def test_salvage_persists_a_metrics_snapshot(
        self, monkeypatch, capsys, tmp_path
    ) -> None:
        # With telemetry on, the salvage path must also write the final
        # OpenMetrics snapshot next to the trace for post-mortems.
        from repro.obs import parse_openmetrics

        self._die_after(monkeypatch, KeyboardInterrupt, 2)
        trace = tmp_path / "run.jsonl"
        code = main(
            self.ARGS + ["--trace", str(trace), "--metrics-port", "0"]
        )
        captured = capsys.readouterr()
        assert code == 130
        metrics = tmp_path / "run.jsonl.metrics"
        assert f"metrics snapshot written to {metrics}" in captured.err
        families = parse_openmetrics(metrics.read_text())
        assert "repro_slots" in families

    def test_healthy_run_stamps_completed(self, capsys, tmp_path) -> None:
        trace = tmp_path / "run.jsonl"
        assert main(self.ARGS + ["--trace", str(trace)]) == 0
        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["status"] == "completed"


class TestEquilibriumGuarantees:
    def test_equilibrium_prints_guarantee_checks(self, capsys) -> None:
        code = main(["equilibrium", "--devices", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "guarantees" in out
        assert "CGBA (Thm 2)" in out
        assert "BDMA (Thm 3)" in out
        # The paper's bounds hold on the sampled slot.
        assert "[ok]" in out and "VIOLATED" not in out
