"""Equality suites for the compiled slot pipeline and batched P2-B.

Three families of guarantees, each asserted bitwise unless noted:

* ``StateGenerator.compile_states`` yields states bit-identical to the
  per-slot :meth:`StateGenerator.states` path for every model
  composition (all three tiers: chunk-blocked, slot-fused, fallback),
  for any chunk size, and end to end through ``repro.api.run``.
* Batched P2-B (``method="batch"``) matches the scalar-loop oracle
  (``method="scalar"``) bit for bit, including every fast-path edge
  case; warm brackets agree to the search tolerance only.
* The warm-start family's semantics: the BDMA fixed-point short-circuit
  is a bit-exact accounting optimisation, ``carry_over`` /
  ``warm_start`` are bit-exact given the same rng draws, and
  ``freq_carry_over`` is equilibrium-equivalent (close, not equal).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import run
from repro.core.p2b import solve_p2b
from repro.core.bdma import cgba_p2a_solver, solve_p2_bdma
from repro.core.state import (
    Assignment,
    Decision,
    ResourceAllocation,
    SlotState,
    validate_decision,
)
from repro.exceptions import ConfigurationError, ValidationError
from repro.network.connectivity import StrategySpace
from repro.radio.mobility import RandomWaypointMobility
from repro.radio.fronthaul import ScintillatingFronthaul
from repro.sim.faults import MarkovOutages
from repro.solvers.scalar import minimize_convex_scalar

from conftest import make_tiny_network, make_tiny_state


# -- compiled states ---------------------------------------------------------


def _small_scenario(**kwargs) -> repro.Scenario:
    defaults = dict(
        config=repro.ScenarioConfig(num_devices=10),
        num_base_stations=3,
        num_clusters=2,
        servers_per_cluster=2,
        num_macro_stations=1,
    )
    defaults.update(kwargs)
    return repro.make_paper_scenario(seed=42, **defaults)


def _assert_states_identical(reference, compiled) -> None:
    reference = list(reference)
    compiled = list(compiled)
    assert len(reference) == len(compiled)
    for ref, got in zip(reference, compiled):
        assert ref.t == got.t
        # tobytes comparison: bit-identity, not just value equality.
        assert ref.cycles.tobytes() == got.cycles.tobytes()
        assert ref.bits.tobytes() == got.bits.tobytes()
        assert (
            ref.spectral_efficiency.tobytes()
            == got.spectral_efficiency.tobytes()
        )
        assert ref.price == got.price
        if ref.fronthaul_se is None:
            assert got.fronthaul_se is None
        else:
            assert ref.fronthaul_se.tobytes() == got.fronthaul_se.tobytes()
        if ref.available_servers is None:
            assert got.available_servers is None
        else:
            assert np.array_equal(ref.available_servers, got.available_servers)


class TestCompiledStates:
    """compile_states is bit-identical to states() on every tier.

    Two *fresh* scenario objects per comparison: stateful models
    (waypoint mobility, AR(1) fronthaul) persist across ``fresh_states``
    calls, so reusing one object would compare different streams.
    """

    @pytest.mark.parametrize("chunk", [1, 7, 32, 100])
    def test_default_scenario_slot_fused_tier(self, chunk: int) -> None:
        # Periodic prices with noise draw rng per slot: slot-fused tier.
        _assert_states_identical(
            _small_scenario().fresh_states(40),
            _small_scenario().fresh_compiled_states(40, chunk=chunk),
        )

    def test_zero_price_noise_chunk_blocked_tier(self) -> None:
        config = repro.ScenarioConfig(num_devices=10, price_noise_std=0.0)
        _assert_states_identical(
            _small_scenario(config=config).fresh_states(40),
            _small_scenario(config=config).fresh_compiled_states(40),
        )

    def test_mobility_fallback_tier(self) -> None:
        _assert_states_identical(
            _small_scenario(
                mobility=RandomWaypointMobility(3000.0)
            ).fresh_states(30),
            _small_scenario(
                mobility=RandomWaypointMobility(3000.0)
            ).fresh_compiled_states(30),
        )

    def test_fronthaul_and_faults_interleaved(self) -> None:
        # Models are stateful: build a fresh set for each scenario.
        def kwargs():
            return dict(
                fronthaul=ScintillatingFronthaul(), faults=MarkovOutages()
            )

        _assert_states_identical(
            _small_scenario(**kwargs()).fresh_states(30),
            _small_scenario(**kwargs()).fresh_compiled_states(30, chunk=8),
        )

    def test_full_composition(self) -> None:
        def kwargs():
            return dict(
                config=repro.ScenarioConfig(num_devices=8, workload="diurnal"),
                mobility=RandomWaypointMobility(3000.0),
                fronthaul=ScintillatingFronthaul(),
                faults=MarkovOutages(),
            )

        _assert_states_identical(
            _small_scenario(**kwargs()).fresh_states(24),
            _small_scenario(**kwargs()).fresh_compiled_states(24),
        )

    def test_start_offset(self) -> None:
        a = _small_scenario()
        b = _small_scenario()
        ref = list(a.generator.states(20, a.state_rng(), start=5))
        got = list(b.generator.compile_states(20, b.state_rng(), start=5))
        _assert_states_identical(ref, got)

    def test_empty_horizon_and_bad_chunk(self) -> None:
        scenario = _small_scenario()
        assert list(scenario.fresh_compiled_states(0)) == []
        with pytest.raises(ConfigurationError):
            list(scenario.fresh_compiled_states(10, chunk=0))

    def test_end_to_end_run_bit_identical(self) -> None:
        compiled = run(
            scenario=_small_scenario(), controller="dpp", horizon=24
        )
        per_slot = run(
            scenario=_small_scenario(),
            controller="dpp",
            horizon=24,
            compiled_states=False,
        )
        for name in ("latency", "cost", "theta", "backlog", "price"):
            assert np.array_equal(
                getattr(compiled, name), getattr(per_slot, name)
            ), name

    def test_trusted_constructor_skips_validation(self) -> None:
        # trusted() is the compiled pipeline's contract: no checks, no
        # conversions -- the arrays land on the state untouched.
        cycles = np.array([1.0, 2.0])
        state = SlotState.trusted(
            t=3,
            cycles=cycles,
            bits=np.array([1.0, 1.0]),
            spectral_efficiency=np.array([[1.0], [2.0]]),
            price=0.5,
        )
        assert state.t == 3
        assert state.cycles is cycles
        assert state.fronthaul_se is None
        assert state.available_servers is None


# -- batched P2-B vs the scalar oracle ---------------------------------------


class TestBatchedP2B:
    def _network_state_assignment(self):
        network = make_tiny_network()
        state = make_tiny_state()
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])
        )
        return network, state, assignment

    def _assert_methods_agree(self, network, state, assignment, *, q, v) -> None:
        scalar = solve_p2b(
            network, state, assignment, queue_backlog=q, v=v, method="scalar"
        )
        batch = solve_p2b(
            network, state, assignment, queue_backlog=q, v=v, method="batch"
        )
        assert scalar.tobytes() == batch.tobytes()

    def test_random_loads(self) -> None:
        network, _, _ = self._network_state_assignment()
        rng = np.random.default_rng(7)
        for trial in range(20):
            state = SlotState(
                t=trial,
                cycles=rng.uniform(1e6, 5e8, size=4),
                bits=rng.uniform(1e5, 1e7, size=4),
                spectral_efficiency=make_tiny_state().spectral_efficiency,
                price=float(rng.uniform(0.0, 2.0)),
            )
            assignment = Assignment(
                bs_of=np.array([0, 0, 1, 1]),
                server_of=np.array(
                    [rng.integers(0, 2), rng.integers(0, 2), 2, 2]
                ),
            )
            self._assert_methods_agree(
                network,
                state,
                assignment,
                q=float(rng.uniform(0.0, 100.0)),
                v=float(rng.uniform(0.1, 500.0)),
            )

    def test_all_idle(self) -> None:
        network, state, assignment = self._network_state_assignment()
        idle = SlotState(
            t=0,
            cycles=np.zeros(4),
            bits=state.bits,
            spectral_efficiency=state.spectral_efficiency,
            price=state.price,
        )
        self._assert_methods_agree(network, idle, assignment, q=5.0, v=10.0)
        freqs = solve_p2b(network, idle, assignment, queue_backlog=5.0, v=10.0)
        assert freqs.tobytes() == network.freq_min.tobytes()

    def test_zero_energy_pressure(self) -> None:
        network, state, assignment = self._network_state_assignment()
        self._assert_methods_agree(network, state, assignment, q=0.0, v=10.0)

    def test_offline_servers(self) -> None:
        network, state, assignment = self._network_state_assignment()
        offline = SlotState(
            t=0,
            cycles=state.cycles,
            bits=state.bits,
            spectral_efficiency=state.spectral_efficiency,
            price=state.price,
            available_servers=np.array([True, False, True]),
        )
        self._assert_methods_agree(network, offline, assignment, q=8.0, v=25.0)
        freqs = solve_p2b(
            network, offline, assignment, queue_backlog=8.0, v=25.0
        )
        assert freqs[1] == network.servers[1].freq_min

    def test_inline_quadratic_matches_generic_search(self) -> None:
        # The scalar loop's fused golden-section specialisation must
        # replay minimize_convex_scalar on the model's power() bit for
        # bit.
        network, state, assignment = self._network_state_assignment()
        q, v, tol = 20.0, 50.0, 1e-8
        from repro.core.latency import server_load_roots

        roots = server_load_roots(network, state, assignment)
        demand = roots * roots
        pressure = q * state.price
        got = solve_p2b(
            network, state, assignment, queue_backlog=q, v=v, method="scalar"
        )
        for n, server in enumerate(network.servers):
            if demand[n] <= 0.0:
                continue
            scale = v * demand[n] / server.speed(1.0)
            model = server.energy_model

            def objective(freq: float) -> float:
                return scale / freq + pressure * model.power(freq)

            expected = minimize_convex_scalar(
                objective, server.freq_min, server.freq_max, tol=tol
            ).x
            assert got[n] == expected

    def test_warm_brackets_agree_to_tolerance(self) -> None:
        network, state, assignment = self._network_state_assignment()
        cold = solve_p2b(
            network, state, assignment, queue_backlog=20.0, v=50.0,
            method="batch",
        )
        warm = solve_p2b(
            network, state, assignment, queue_backlog=20.0, v=50.0,
            method="batch", bracket_hint=cold,
        )
        np.testing.assert_allclose(warm, cold, rtol=1e-5, atol=1e-5)


# -- warm-start semantics ----------------------------------------------------


class TestWarmStartSemantics:
    def _solve(self, solver, *, warm_start: bool = True, z: int = 4):
        network = make_tiny_network()
        state = make_tiny_state()
        space = StrategySpace(network, state.coverage())
        return solve_p2_bdma(
            network,
            state,
            space,
            np.random.default_rng(3),
            queue_backlog=10.0,
            v=50.0,
            budget=1.0,
            z=z,
            p2a_solver=solver,
            warm_start=warm_start,
        )

    def test_fixed_point_short_circuit_is_bit_exact(self) -> None:
        # Wrapping the CGBA solver in a plain function strips the
        # supports_fixed_point marker, so BDMA runs every round; the
        # short-circuit path must return the identical decision and
        # objective history anyway.
        with_exit = self._solve(cgba_p2a_solver())

        inner = cgba_p2a_solver()

        def no_marker(*args, **kwargs):
            return inner(*args, **kwargs)

        without_exit = self._solve(no_marker)
        assert np.array_equal(
            with_exit.assignment.bs_of, without_exit.assignment.bs_of
        )
        assert np.array_equal(
            with_exit.assignment.server_of, without_exit.assignment.server_of
        )
        assert (
            with_exit.frequencies.tobytes()
            == without_exit.frequencies.tobytes()
        )
        assert with_exit.objective == without_exit.objective
        assert with_exit.objective_history == without_exit.objective_history

    def test_run_is_reproducible_for_both_warm_settings(self) -> None:
        for warm in (True, False):
            first = run(
                scenario=_small_scenario(),
                controller="dpp",
                horizon=16,
                warm_start=warm,
            )
            second = run(
                scenario=_small_scenario(),
                controller="dpp",
                horizon=16,
                warm_start=warm,
            )
            assert np.array_equal(first.latency, second.latency)
            assert np.array_equal(first.cost, second.cost)

    def test_freq_carry_over_is_equilibrium_equivalent(self) -> None:
        # Not bit-exact (documented): the alternation walks a different
        # path, but lands on an equally good fixed point, so headline
        # time averages stay close.
        cold = run(scenario=_small_scenario(), controller="dpp", horizon=24)
        warm = run(
            scenario=_small_scenario(),
            controller="dpp",
            horizon=24,
            freq_carry_over=True,
        )
        assert np.all(np.isfinite(warm.latency))
        cold_avg = float(np.mean(cold.latency))
        warm_avg = float(np.mean(warm.latency))
        assert warm_avg == pytest.approx(cold_avg, rel=0.05)


# -- vectorized validate_decision --------------------------------------------


def _reference_validate(network, state, decision, *, atol: float = 1e-9):
    """The original per-device loop, kept verbatim as the oracle."""
    assignment = decision.assignment
    allocation = decision.allocation
    num_devices = network.num_devices
    if assignment.num_devices != num_devices or state.num_devices != num_devices:
        raise ValidationError("device-count mismatch between network/state/decision")
    for i in range(num_devices):
        k = int(assignment.bs_of[i])
        n = int(assignment.server_of[i])
        if not 0 <= k < network.num_base_stations:
            raise ValidationError(f"device {i}: base station {k} out of range")
        if not 0 <= n < network.num_servers:
            raise ValidationError(f"device {i}: server {n} out of range")
        if state.spectral_efficiency[i, k] <= 0.0:
            raise ValidationError(
                f"device {i}: selected base station {k} does not cover it"
            )
        if state.available_servers is not None and not state.available_servers[n]:
            raise ValidationError(
                f"device {i}: selected server {n} is offline this slot"
            )
        if n not in network.servers_reachable_from(k):
            raise ValidationError(
                f"device {i}: server {n} unreachable through base station {k} "
                "(constraint (3))"
            )
    for k in range(network.num_base_stations):
        members = assignment.devices_on_bs(k)
        if np.sum(allocation.access_share[members]) > 1.0 + atol:
            raise ValidationError(f"base station {k}: access shares exceed 1")
        if np.sum(allocation.fronthaul_share[members]) > 1.0 + atol:
            raise ValidationError(f"base station {k}: fronthaul shares exceed 1")
    for n in range(network.num_servers):
        members = assignment.devices_on_server(n)
        if np.sum(allocation.compute_share[members]) > 1.0 + atol:
            raise ValidationError(f"server {n}: compute shares exceed 1")
    freqs = decision.frequencies
    if freqs.size != network.num_servers:
        raise ValidationError("one frequency per server is required")
    if np.any(freqs < network.freq_min - atol) or np.any(
        freqs > network.freq_max + atol
    ):
        raise ValidationError("a frequency lies outside [F^L, F^U]")


def _decision(
    bs=(0, 0, 1, 1),
    server=(0, 1, 2, 2),
    access=(0.2, 0.2, 0.2, 0.2),
    fronthaul=(0.2, 0.2, 0.2, 0.2),
    compute=(0.3, 0.3, 0.3, 0.3),
    freqs=(2.0, 2.0, 2.0),
) -> Decision:
    return Decision(
        assignment=Assignment(
            bs_of=np.array(bs), server_of=np.array(server)
        ),
        allocation=ResourceAllocation(
            access_share=np.array(access),
            fronthaul_share=np.array(fronthaul),
            compute_share=np.array(compute),
        ),
        frequencies=np.array(freqs),
    )


class TestValidateDecisionVectorized:
    CASES = {
        "valid": _decision(),
        "bs_out_of_range": _decision(bs=(0, 5, 1, 1)),
        "bs_negative": _decision(bs=(-1, 0, 1, 1)),
        "server_out_of_range": _decision(server=(0, 1, 9, 2)),
        "uncovered_bs": _decision(bs=(1, 0, 1, 1)),  # device 0 not on BS1
        "unreachable_server": _decision(server=(2, 1, 2, 2)),
        "access_over": _decision(access=(0.9, 0.9, 0.2, 0.2)),
        "fronthaul_over": _decision(fronthaul=(0.9, 0.9, 0.2, 0.2)),
        "compute_over": _decision(server=(0, 0, 2, 2),
                                  compute=(0.8, 0.8, 0.3, 0.3)),
        "multi_violation_first_device_wins": _decision(
            bs=(0, 5, 1, 1), server=(0, 1, 9, 2)
        ),
        "bad_freq": _decision(freqs=(2.0, 9.0, 2.0)),
        "freq_count": _decision(freqs=(2.0, 2.0)),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_matches_reference_loop(self, name: str) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        decision = self.CASES[name]
        try:
            _reference_validate(network, state, decision)
            expected: str | None = None
        except ValidationError as err:
            expected = str(err)
        if expected is None:
            validate_decision(network, state, decision)
        else:
            with pytest.raises(ValidationError) as got:
                validate_decision(network, state, decision)
            assert str(got.value) == expected

    def test_offline_server_matches_reference(self) -> None:
        network = make_tiny_network()
        base = make_tiny_state()
        state = SlotState(
            t=0,
            cycles=base.cycles,
            bits=base.bits,
            spectral_efficiency=base.spectral_efficiency,
            price=base.price,
            available_servers=np.array([True, False, True]),
        )
        decision = _decision()  # device 1 sits on offline server 1
        with pytest.raises(ValidationError) as ref:
            _reference_validate(network, state, decision)
        with pytest.raises(ValidationError) as got:
            validate_decision(network, state, decision)
        assert str(got.value) == str(ref.value)


# -- surfaced counters -------------------------------------------------------


class TestSurfacedCounters:
    def test_trace_summary_names_engine_counters(self) -> None:
        from repro.obs.trace import Trace

        trace = Trace()
        trace.counters["engine.warm_start_hits"] = 12.0
        trace.counters["p2b.batch_iters"] = 340.0
        summary = trace.summary()
        assert "warm_start_hits=12" in summary
        assert "batch_iters=340" in summary

    def test_dashboard_engine_panel_prefers_perf_counters(self) -> None:
        from repro.obs.dashboard import Dashboard

        dash = Dashboard(ascii_only=True)
        for name in (
            "engine.warm_start_hits",
            "p2b.batch_iters",
            "aaa.filler1",
            "aab.filler2",
            "aac.filler3",
            "aad.filler4",
            "aae.filler5",
            "aaf.filler6",
        ):
            dash.emit({"kind": "counter", "name": name, "value": 3.0})
        frame = dash.render()
        assert "engine.warm_start_hits=3" in frame
        assert "p2b.batch_iters=3" in frame
