"""Tests for scenario construction and the public API surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import PRICE_SCALE, ScenarioConfig, make_paper_scenario
from repro.exceptions import ConfigurationError
from repro.workload.generators import UniformTaskGenerator


class TestMakePaperScenario:
    def test_defaults_match_paper(self) -> None:
        scenario = make_paper_scenario(seed=1, config=ScenarioConfig(num_devices=30))
        net = scenario.network
        assert net.num_base_stations == 6
        assert net.num_clusters == 2
        assert net.num_servers == 16
        assert net.num_devices == 30
        assert scenario.budget > 0.0

    def test_budget_between_feasible_extremes(self) -> None:
        scenario = make_paper_scenario(seed=2, config=ScenarioConfig(num_devices=10))
        models = scenario.network.energy_models()
        trend_mean = np.mean(
            [
                scenario.generator.prices.trend(t)
                for t in range(scenario.generator.prices.period)
            ]
        )
        from repro.energy.cost import max_slot_cost, min_slot_cost

        lo = PRICE_SCALE * min_slot_cost(models, scenario.network.freq_min, trend_mean)
        hi = PRICE_SCALE * max_slot_cost(models, scenario.network.freq_max, trend_mean)
        assert lo <= scenario.budget <= hi

    def test_budget_fraction_monotone(self) -> None:
        budgets = [
            make_paper_scenario(
                seed=3,
                config=ScenarioConfig(num_devices=5, budget_fraction=f),
            ).budget
            for f in (0.1, 0.5, 0.9)
        ]
        assert budgets[0] < budgets[1] < budgets[2]

    def test_diurnal_workload_option(self) -> None:
        scenario = make_paper_scenario(
            seed=4, config=ScenarioConfig(num_devices=8, workload="diurnal")
        )
        states = list(scenario.fresh_states(48))
        peak = np.mean([states[20].cycles.mean(), states[44].cycles.mean()])
        trough = np.mean([states[4].cycles.mean(), states[28].cycles.mean()])
        assert peak > 1.3 * trough

    def test_unknown_workload_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            make_paper_scenario(
                seed=5, config=ScenarioConfig(num_devices=5, workload="bursty")
            )

    def test_custom_task_generator_must_match_devices(self) -> None:
        with pytest.raises(ConfigurationError):
            make_paper_scenario(
                seed=6,
                config=ScenarioConfig(num_devices=5),
                tasks=UniformTaskGenerator(7),
            )

    def test_network_overrides_forwarded(self) -> None:
        scenario = make_paper_scenario(
            seed=7,
            config=ScenarioConfig(num_devices=5),
            num_base_stations=4,
            servers_per_cluster=3,
        )
        assert scenario.network.num_base_stations == 4
        assert scenario.network.num_servers == 6

    def test_same_seed_same_scenario(self) -> None:
        a = make_paper_scenario(seed=8, config=ScenarioConfig(num_devices=6))
        b = make_paper_scenario(seed=8, config=ScenarioConfig(num_devices=6))
        np.testing.assert_allclose(a.network.suitability, b.network.suitability)
        assert a.budget == pytest.approx(b.budget)

    def test_controller_rng_streams_distinct(self) -> None:
        scenario = make_paper_scenario(seed=9, config=ScenarioConfig(num_devices=5))
        a = scenario.controller_rng("bdma").uniform(size=4)
        b = scenario.controller_rng("ropt").uniform(size=4)
        assert not np.allclose(a, b)


class TestPublicApi:
    def test_version(self) -> None:
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self) -> None:
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_runs(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=7, config=repro.ScenarioConfig(num_devices=8)
        )
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=2,
        )
        result = repro.run_simulation(
            controller, scenario.fresh_states(4), budget=scenario.budget
        )
        summary = result.summary()
        assert summary.horizon == 4
        assert summary.mean_latency > 0.0
