"""Tests for Lemma 1 (closed-form allocation) and the latency algebra.

The two central invariants:

1. Plugging Lemma 1's allocation into the *general* latency formulas
   (Eqs. 7-11) gives exactly the closed forms ``T^P``/``T^C``
   (Eqs. 18-19).
2. Lemma 1's allocation is optimal: random feasible perturbations never
   achieve lower total latency.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import optimal_allocation
from repro.core.latency import (
    communication_latency,
    optimal_communication_latency,
    optimal_processing_latency,
    optimal_total_latency,
    per_device_latency,
    processing_latency,
    total_latency,
)
from repro.core.state import Assignment, ResourceAllocation, SlotState
from repro.exceptions import ValidationError
from repro.network.connectivity import StrategySpace

from conftest import make_tiny_network, make_tiny_state
from helpers import naive_total_latency, random_feasible_assignment


@pytest.fixture
def setup():
    network = make_tiny_network()
    state = make_tiny_state()
    assignment = Assignment(
        bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])
    )
    frequencies = np.array([2.0, 3.0, 2.5])
    return network, state, assignment, frequencies


class TestLemma1:
    def test_shares_sum_to_one_per_resource(self, setup) -> None:
        network, state, assignment, _ = setup
        allocation = optimal_allocation(network, state, assignment)
        for n in range(network.num_servers):
            members = assignment.devices_on_server(n)
            if members.size:
                assert allocation.compute_share[members].sum() == pytest.approx(1.0)
        for k in range(network.num_base_stations):
            members = assignment.devices_on_bs(k)
            if members.size:
                assert allocation.access_share[members].sum() == pytest.approx(1.0)
                assert allocation.fronthaul_share[members].sum() == pytest.approx(1.0)

    def test_closed_form_square_root_rule(self, setup) -> None:
        network, state, assignment, _ = setup
        allocation = optimal_allocation(network, state, assignment)
        # Devices 2 and 3 share server 2: phi ratio = sqrt(f2/s22)/sqrt(f3/s32).
        w2 = np.sqrt(state.cycles[2] / network.suitability[2, 2])
        w3 = np.sqrt(state.cycles[3] / network.suitability[3, 2])
        assert allocation.compute_share[2] / allocation.compute_share[3] == (
            pytest.approx(w2 / w3)
        )
        # Devices 2 and 3 share BS1's fronthaul: psi^F ~ sqrt(d).
        assert allocation.fronthaul_share[2] / allocation.fronthaul_share[3] == (
            pytest.approx(np.sqrt(state.bits[2] / state.bits[3]))
        )

    def test_plugging_into_general_formulas_matches_closed_form(self, setup) -> None:
        network, state, assignment, frequencies = setup
        allocation = optimal_allocation(network, state, assignment)
        general = total_latency(network, state, assignment, allocation, frequencies)
        closed = optimal_total_latency(network, state, assignment, frequencies)
        assert general == pytest.approx(closed, rel=1e-12)

    def test_against_naive_transcription(self, setup) -> None:
        network, state, assignment, frequencies = setup
        allocation = optimal_allocation(network, state, assignment)
        naive = naive_total_latency(
            network,
            state,
            assignment,
            allocation.access_share,
            allocation.fronthaul_share,
            allocation.compute_share,
            frequencies,
        )
        fast = total_latency(network, state, assignment, allocation, frequencies)
        assert fast == pytest.approx(naive, rel=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_property_lemma1_is_optimal(self, seed: int) -> None:
        """Random share perturbations never beat the closed form."""
        network = make_tiny_network()
        state = make_tiny_state()
        rng = np.random.default_rng(seed)
        space = StrategySpace(network, state.coverage())
        assignment = random_feasible_assignment(space, rng)
        frequencies = rng.uniform(1.8, 3.6, size=3)
        best = optimal_allocation(network, state, assignment)
        best_latency = total_latency(network, state, assignment, best, frequencies)

        # Perturb: random positive shares renormalised per resource group.
        def renorm(weights: np.ndarray, groups: np.ndarray, count: int) -> np.ndarray:
            sums = np.bincount(groups, weights=weights, minlength=count)
            return weights / sums[groups]

        raw = rng.uniform(0.1, 1.0, size=4)
        perturbed = ResourceAllocation(
            access_share=renorm(raw, assignment.bs_of, 2),
            fronthaul_share=renorm(rng.uniform(0.1, 1.0, size=4), assignment.bs_of, 2),
            compute_share=renorm(rng.uniform(0.1, 1.0, size=4), assignment.server_of, 3),
        )
        perturbed_latency = total_latency(
            network, state, assignment, perturbed, frequencies
        )
        assert best_latency <= perturbed_latency + 1e-9

    def test_uncovered_selected_bs_rejected(self) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        bad = Assignment(bs_of=np.array([1, 0, 0, 0]), server_of=np.zeros(4, dtype=int))
        with pytest.raises(ValidationError):
            optimal_allocation(network, state, bad)


class TestLatencyAlgebra:
    def test_processing_scales_inversely_with_frequency(self, setup) -> None:
        network, state, assignment, _ = setup
        slow = optimal_processing_latency(
            network, state, assignment, np.full(3, 1.8)
        )
        fast = optimal_processing_latency(
            network, state, assignment, np.full(3, 3.6)
        )
        assert slow == pytest.approx(2.0 * fast)

    def test_communication_independent_of_frequency(self, setup) -> None:
        network, state, assignment, _ = setup
        a = optimal_communication_latency(network, state, assignment)
        b = optimal_communication_latency(network, state, assignment)
        assert a == b
        assert a > 0.0

    def test_total_is_sum_of_parts(self, setup) -> None:
        network, state, assignment, frequencies = setup
        total = optimal_total_latency(network, state, assignment, frequencies)
        parts = optimal_processing_latency(
            network, state, assignment, frequencies
        ) + optimal_communication_latency(network, state, assignment)
        assert total == pytest.approx(parts)

    def test_zero_demand_device_contributes_zero(self) -> None:
        network = make_tiny_network()
        state = SlotState(
            t=0,
            cycles=np.array([0.0, 150e6, 80e6, 120e6]),
            bits=np.array([0.0, 8e6, 4e6, 6e6]),
            spectral_efficiency=make_tiny_state().spectral_efficiency,
            price=0.5,
        )
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])
        )
        allocation = optimal_allocation(network, state, assignment)
        per_device = per_device_latency(
            network, state, assignment, allocation, np.full(3, 2.0)
        )
        assert per_device[0] == 0.0
        assert np.all(np.isfinite(per_device))

    def test_congestion_superadditivity(self, setup) -> None:
        """Two devices on one server cost more than the sum of them alone."""
        network, state, _, frequencies = setup
        together = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 0, 2, 2])
        )
        apart = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])
        )
        t_together = optimal_processing_latency(
            network, state, together, frequencies
        )
        t_apart = optimal_processing_latency(network, state, apart, frequencies)
        assert t_together > t_apart

    def test_per_device_sums_to_total(self, setup) -> None:
        network, state, assignment, frequencies = setup
        allocation = optimal_allocation(network, state, assignment)
        per_device = per_device_latency(
            network, state, assignment, allocation, frequencies
        )
        assert float(per_device.sum()) == pytest.approx(
            total_latency(network, state, assignment, allocation, frequencies)
        )

    def test_processing_latency_matches_eq7(self, setup) -> None:
        network, state, assignment, frequencies = setup
        allocation = optimal_allocation(network, state, assignment)
        # Device 1 alone on server 1: phi = 1, latency = f/(speed*sigma).
        expected = state.cycles[1] / (
            network.servers[1].speed(frequencies[1]) * network.suitability[1, 1]
        )
        lone = processing_latency(
            network,
            state,
            Assignment(bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])),
            allocation,
            frequencies,
        )
        assert expected < lone  # total includes everyone
        assert allocation.compute_share[1] == pytest.approx(1.0)
