"""Tests for CGBA (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cgba import cgba_approximation_ratio, solve_p2a_cgba
from repro.core.congestion_game import OffloadingCongestionGame
from repro.core.latency import optimal_total_latency
from repro.network.connectivity import StrategySpace

import repro
from conftest import make_tiny_network, make_tiny_state
from helpers import brute_force_p2a


@pytest.fixture
def setup():
    network = make_tiny_network()
    state = make_tiny_state()
    space = StrategySpace(network, state.coverage())
    frequencies = np.array([2.0, 3.0, 2.5])
    return network, state, space, frequencies


class TestApproximationRatio:
    def test_formula(self) -> None:
        assert cgba_approximation_ratio(0.0) == pytest.approx(2.62)
        assert cgba_approximation_ratio(0.1) == pytest.approx(2.62 / 0.2)

    def test_out_of_range_rejected(self) -> None:
        with pytest.raises(ValueError):
            cgba_approximation_ratio(0.125)
        with pytest.raises(ValueError):
            cgba_approximation_ratio(-0.01)


class TestCGBAOnTinyInstance:
    def test_result_is_feasible_and_consistent(self, setup) -> None:
        network, state, space, frequencies = setup
        result = solve_p2a_cgba(
            network, state, space, frequencies, np.random.default_rng(0)
        )
        assert result.converged
        for i in range(network.num_devices):
            assert space.contains(
                i, int(result.assignment.bs_of[i]), int(result.assignment.server_of[i])
            )
        recomputed = optimal_total_latency(
            network, state, result.assignment, frequencies
        )
        assert result.total_latency == pytest.approx(recomputed, rel=1e-9)

    def test_terminates_at_nash_equilibrium(self, setup) -> None:
        network, state, space, frequencies = setup
        result = solve_p2a_cgba(
            network, state, space, frequencies, np.random.default_rng(1)
        )
        game = OffloadingCongestionGame(
            network, state, space, frequencies, initial=result.assignment
        )
        for player in range(game.num_players):
            _, best = game.best_response(player)
            assert game.player_cost(player) <= best + 1e-9

    def test_within_theorem2_bound_of_optimum(self, setup) -> None:
        network, state, space, frequencies = setup
        _, optimum = brute_force_p2a(network, state, space, frequencies)
        for seed in range(10):
            result = solve_p2a_cgba(
                network, state, space, frequencies, np.random.default_rng(seed)
            )
            assert result.total_latency <= 2.62 * optimum + 1e-9

    def test_near_optimal_on_tiny_instance(self, setup) -> None:
        # The equilibrium CGBA reaches is not always the social optimum,
        # but on this instance every equilibrium is within 6% of it (the
        # paper reports ~1.02x at its scale); far tighter than Theorem
        # 2's 2.62 worst case.
        network, state, space, frequencies = setup
        _, optimum = brute_force_p2a(network, state, space, frequencies)
        for seed in range(10):
            result = solve_p2a_cgba(
                network, state, space, frequencies, np.random.default_rng(seed)
            )
            assert result.total_latency <= 1.10 * optimum

    def test_warm_start_from_equilibrium_makes_no_moves(self, setup) -> None:
        network, state, space, frequencies = setup
        first = solve_p2a_cgba(
            network, state, space, frequencies, np.random.default_rng(2)
        )
        second = solve_p2a_cgba(
            network,
            state,
            space,
            frequencies,
            np.random.default_rng(3),
            initial=first.assignment,
        )
        assert second.iterations == 0
        assert second.total_latency == pytest.approx(first.total_latency)

    def test_history_recording(self, setup) -> None:
        network, state, space, frequencies = setup
        result = solve_p2a_cgba(
            network,
            state,
            space,
            frequencies,
            np.random.default_rng(4),
            record_history=True,
        )
        assert len(result.cost_history) == result.iterations + 1
        # Total latency is non-increasing along max-gap best responses?
        # Not guaranteed in general for weighted games, but the final
        # value matches the reported latency.
        assert result.cost_history[-1] == pytest.approx(result.total_latency)

    def test_lambda_slack_reduces_iterations(self, setup) -> None:
        network, state, space, frequencies = setup
        # Aggregate across seeds: slack can only stop earlier.
        for seed in range(5):
            exact = solve_p2a_cgba(
                network, state, space, frequencies,
                np.random.default_rng(seed), slack=0.0,
            )
            lazy = solve_p2a_cgba(
                network, state, space, frequencies,
                np.random.default_rng(seed), slack=0.1,
            )
            assert lazy.iterations <= exact.iterations


class TestCGBAOnRandomScenario:
    def test_beats_random_assignment(self, small_scenario: "repro.Scenario") -> None:
        network = small_scenario.network
        state = next(iter(small_scenario.fresh_states(1)))
        space = StrategySpace(network, state.coverage())
        frequencies = network.freq_max.copy()
        rng = np.random.default_rng(0)
        result = solve_p2a_cgba(network, state, space, frequencies, rng)
        random_latencies = []
        for seed in range(20):
            bs_of, server_of = space.random_assignment(np.random.default_rng(seed))
            random_latencies.append(
                optimal_total_latency(
                    network,
                    state,
                    repro.Assignment(bs_of=bs_of, server_of=server_of),
                    frequencies,
                )
            )
        assert result.total_latency < np.mean(random_latencies)
