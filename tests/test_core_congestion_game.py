"""Tests for the weighted congestion game representation of P2-A."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.congestion_game import OffloadingCongestionGame
from repro.core.latency import optimal_total_latency
from repro.core.state import Assignment
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace

from conftest import make_tiny_network, make_tiny_state
from helpers import random_feasible_assignment


@pytest.fixture
def game_setup():
    network = make_tiny_network()
    state = make_tiny_state()
    space = StrategySpace(network, state.coverage())
    frequencies = np.array([2.0, 3.0, 2.5])
    return network, state, space, frequencies


def make_game(game_setup, seed: int = 0) -> OffloadingCongestionGame:
    network, state, space, frequencies = game_setup
    return OffloadingCongestionGame(
        network, state, space, frequencies, rng=np.random.default_rng(seed)
    )


class TestEquivalenceWithLatency:
    def test_total_cost_equals_T_t(self, game_setup) -> None:
        network, state, space, frequencies = game_setup
        for seed in range(10):
            assignment = random_feasible_assignment(
                space, np.random.default_rng(seed)
            )
            game = OffloadingCongestionGame(
                network, state, space, frequencies, initial=assignment
            )
            expected = optimal_total_latency(network, state, assignment, frequencies)
            assert game.total_cost() == pytest.approx(expected, rel=1e-12)

    def test_sum_of_player_costs_equals_total(self, game_setup) -> None:
        game = make_game(game_setup)
        total = sum(game.player_cost(i) for i in range(game.num_players))
        assert total == pytest.approx(game.total_cost(), rel=1e-12)


class TestIncrementalBookkeeping:
    def test_move_keeps_loads_consistent(self, game_setup) -> None:
        network, state, space, frequencies = game_setup
        game = make_game(game_setup, seed=1)
        rng = np.random.default_rng(2)
        for _ in range(30):
            player = int(rng.integers(game.num_players))
            ks, ns = space.pairs(player)
            j = int(rng.integers(ks.size))
            game.move(player, (int(ks[j]), int(ns[j])))
        # Rebuild from scratch and compare every statistic.
        rebuilt = OffloadingCongestionGame(
            network, state, space, frequencies, initial=game.assignment()
        )
        assert game.total_cost() == pytest.approx(rebuilt.total_cost(), rel=1e-9)
        assert game.potential() == pytest.approx(rebuilt.potential(), rel=1e-9)
        for i in range(game.num_players):
            assert game.player_cost(i) == pytest.approx(
                rebuilt.player_cost(i), rel=1e-9
            )

    def test_move_delta_matches_actual_change(self, game_setup) -> None:
        network, state, space, frequencies = game_setup
        rng = np.random.default_rng(3)
        game = make_game(game_setup, seed=3)
        for _ in range(30):
            player = int(rng.integers(game.num_players))
            ks, ns = space.pairs(player)
            j = int(rng.integers(ks.size))
            strategy = (int(ks[j]), int(ns[j]))
            before = game.total_cost()
            predicted = game.move_delta(player, strategy)
            game.move(player, strategy)
            assert game.total_cost() - before == pytest.approx(
                predicted, rel=1e-9, abs=1e-12
            )

    def test_noop_move_delta_zero(self, game_setup) -> None:
        game = make_game(game_setup, seed=4)
        for player in range(game.num_players):
            assert game.move_delta(player, game.strategy_of(player)) == 0.0


class TestPotential:
    def test_best_response_changes_potential_by_cost_change(self, game_setup) -> None:
        """The defining identity of a potential game, checked on moves."""
        network, state, space, frequencies = game_setup
        rng = np.random.default_rng(5)
        game = make_game(game_setup, seed=5)
        for _ in range(40):
            player = int(rng.integers(game.num_players))
            ks, ns = space.pairs(player)
            j = int(rng.integers(ks.size))
            strategy = (int(ks[j]), int(ns[j]))
            cost_before = game.player_cost(player)
            pot_before = game.potential()
            game.move(player, strategy)
            cost_after = game.player_cost(player)
            pot_after = game.potential()
            assert pot_after - pot_before == pytest.approx(
                cost_after - cost_before, rel=1e-9, abs=1e-12
            )

    def test_best_response_strictly_decreases_potential(self, game_setup) -> None:
        game = make_game(game_setup, seed=6)
        for player in range(game.num_players):
            strategy, cost = game.best_response(player)
            if cost < game.player_cost(player) - 1e-12:
                pot_before = game.potential()
                game.move(player, strategy)
                assert game.potential() < pot_before


class TestBestResponse:
    def test_best_response_is_argmin_over_strategies(self, game_setup) -> None:
        network, state, space, frequencies = game_setup
        game = make_game(game_setup, seed=7)
        for player in range(game.num_players):
            strategy, cost = game.best_response(player)
            # Enumerate all strategies by brute force.
            ks, ns = space.pairs(player)
            best = np.inf
            for k, n in zip(ks.tolist(), ns.tolist()):
                probe = OffloadingCongestionGame(
                    network,
                    state,
                    space,
                    frequencies,
                    initial=game.assignment().replace(player, k, n),
                )
                best = min(best, probe.player_cost(player))
            assert cost == pytest.approx(best, rel=1e-9)
            assert space.contains(player, *strategy)

    def test_requires_initial_or_rng(self, game_setup) -> None:
        network, state, space, frequencies = game_setup
        with pytest.raises(ConfigurationError):
            OffloadingCongestionGame(network, state, space, frequencies)

    def test_frequency_count_validated(self, game_setup) -> None:
        network, state, space, _ = game_setup
        with pytest.raises(ConfigurationError):
            OffloadingCongestionGame(
                network, state, space, np.array([2.0]), rng=np.random.default_rng(0)
            )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_faster_server_weight(self, seed: int) -> None:
        """Raising a server's clock lowers costs of its users."""
        network = make_tiny_network()
        state = make_tiny_state()
        space = StrategySpace(network, state.coverage())
        assignment = random_feasible_assignment(space, np.random.default_rng(seed))
        slow = OffloadingCongestionGame(
            network, state, space, np.array([1.8, 1.8, 1.8]), initial=assignment
        )
        fast = OffloadingCongestionGame(
            network, state, space, np.array([3.6, 3.6, 3.6]), initial=assignment
        )
        assert fast.total_cost() < slow.total_cost()
