"""Tests for the online DPP controller (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.baselines import ropt_p2a_solver
from repro.core.controller import DPPController
from repro.core.state import validate_decision
from repro.exceptions import ConfigurationError

from conftest import make_tiny_network, make_tiny_state


def make_controller(network, **overrides) -> DPPController:
    defaults = dict(v=50.0, budget=20.0, z=2)
    defaults.update(overrides)
    return DPPController(network, np.random.default_rng(0), **defaults)


class TestSlotStep:
    def test_record_is_internally_consistent(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        state = make_tiny_state()
        record = controller.step(state)
        assert record.t == state.t
        assert record.theta == pytest.approx(record.cost - controller.budget)
        assert record.backlog_after == pytest.approx(
            max(record.backlog_before + record.theta, 0.0)
        )
        assert record.solve_seconds > 0.0
        validate_decision(network, state, record.decision())

    def test_queue_threads_across_slots(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network, budget=0.0)  # always overshoots
        backlog = 0.0
        for t in range(5):
            record = controller.step(make_tiny_state(t=t))
            assert record.backlog_before == pytest.approx(backlog)
            backlog = record.backlog_after
        assert backlog > 0.0

    def test_zero_budget_queue_grows_monotonically(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network, budget=0.0)
        backlogs = [controller.step(make_tiny_state(t=t)).backlog_after
                    for t in range(6)]
        assert all(b2 >= b1 for b1, b2 in zip(backlogs, backlogs[1:]))

    def test_huge_budget_queue_stays_empty(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network, budget=1e12)
        for t in range(3):
            record = controller.step(make_tiny_state(t=t))
            assert record.backlog_after == 0.0
            # Unconstrained energy: servers run flat out for latency.
            np.testing.assert_allclose(record.frequencies, network.freq_max)

    def test_reset_restores_initial_state(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network, budget=0.0, initial_backlog=2.0)
        controller.step(make_tiny_state())
        controller.reset()
        assert controller.queue.backlog == 2.0
        record = controller.step(make_tiny_state())
        assert record.backlog_before == pytest.approx(2.0)

    def test_invalid_parameters_rejected(self) -> None:
        network = make_tiny_network()
        with pytest.raises(ConfigurationError):
            make_controller(network, v=0.0)
        with pytest.raises(ConfigurationError):
            make_controller(network, budget=-1.0)


class TestSolverPlugability:
    def test_ropt_based_dpp_runs_and_is_worse(self) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        cgba = make_controller(network)
        ropt = DPPController(
            network,
            np.random.default_rng(0),
            v=50.0,
            budget=20.0,
            z=1,
            p2a_solver=ropt_p2a_solver(),
        )
        # Average over repeated fresh slots: CGBA-based DPP achieves
        # lower latency than ROPT-based DPP.
        cgba_lat = np.mean([cgba.step(make_tiny_state(t=t)).latency
                            for t in range(5)])
        ropt_lat = np.mean([ropt.step(make_tiny_state(t=t)).latency
                            for t in range(5)])
        assert cgba_lat <= ropt_lat

    def test_carry_over_toggle(self) -> None:
        network = make_tiny_network()
        warm = make_controller(network, carry_over=True)
        cold = make_controller(network, carry_over=False)
        for t in range(3):
            warm.step(make_tiny_state(t=t))
            cold.step(make_tiny_state(t=t))
        assert warm._previous is not None
        assert cold._previous is None


class TestStrategySpaceCache:
    def test_cache_reused_for_same_coverage(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        s1 = controller.strategy_space(make_tiny_state(t=0))
        s2 = controller.strategy_space(make_tiny_state(t=1))
        assert s1 is s2

    def test_cache_rebuilt_on_coverage_change(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        state = make_tiny_state()
        s1 = controller.strategy_space(state)
        h = state.spectral_efficiency.copy()
        h[2, 1] = 0.0  # device 2 loses BS1
        changed = repro.SlotState(
            t=1, cycles=state.cycles, bits=state.bits,
            spectral_efficiency=h, price=state.price,
        )
        s2 = controller.strategy_space(changed)
        assert s1 is not s2
        assert s2.num_strategies(2) == 2
