"""Tests for the P2-B frequency-scaling subproblem solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.drift_penalty import dpp_objective
from repro.core.latency import server_load_roots
from repro.core.p2b import solve_p2b
from repro.core.state import Assignment

from conftest import make_tiny_network, make_tiny_state


@pytest.fixture
def setup():
    network = make_tiny_network()
    state = make_tiny_state()
    assignment = Assignment(
        bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])
    )
    return network, state, assignment


class TestFastPaths:
    def test_idle_server_parks_at_fmin(self, setup) -> None:
        network, state, _ = setup
        # Nobody selects server 1.
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 0, 2, 2])
        )
        freqs = solve_p2b(network, state, assignment, queue_backlog=5.0, v=10.0)
        assert freqs[1] == pytest.approx(network.servers[1].freq_min)

    def test_zero_queue_runs_loaded_servers_flat_out(self, setup) -> None:
        network, state, assignment = setup
        freqs = solve_p2b(network, state, assignment, queue_backlog=0.0, v=10.0)
        for n in range(network.num_servers):
            assert freqs[n] == pytest.approx(network.servers[n].freq_max)

    def test_zero_price_runs_loaded_servers_flat_out(self, setup) -> None:
        network, _, assignment = setup
        state = make_tiny_state(price=0.0)
        freqs = solve_p2b(network, state, assignment, queue_backlog=100.0, v=10.0)
        np.testing.assert_allclose(freqs, network.freq_max)

    def test_huge_queue_parks_everything_near_fmin(self, setup) -> None:
        network, state, assignment = setup
        freqs = solve_p2b(network, state, assignment, queue_backlog=1e12, v=1.0)
        np.testing.assert_allclose(freqs, network.freq_min, atol=1e-3)


class TestOptimality:
    def test_beats_grid_search(self, setup) -> None:
        network, state, assignment = setup
        q, v = 20.0, 50.0
        freqs = solve_p2b(network, state, assignment, queue_backlog=q, v=v)
        demand = server_load_roots(network, state, assignment) ** 2

        def per_server_objective(n: int, w: float) -> float:
            latency = v * demand[n] / (network.servers[n].cores * w * 1e9)
            energy = q * state.price * network.servers[n].energy_model.power(w)
            return latency + energy

        for n in range(network.num_servers):
            grid = np.linspace(
                network.servers[n].freq_min, network.servers[n].freq_max, 2_000
            )
            best_grid = min(per_server_objective(n, float(w)) for w in grid)
            ours = per_server_objective(n, float(freqs[n]))
            assert ours <= best_grid + 1e-9 * max(1.0, abs(best_grid))

    def test_bounds_always_respected(self, setup) -> None:
        network, state, assignment = setup
        for q in (0.0, 0.1, 10.0, 1e6):
            freqs = solve_p2b(network, state, assignment, queue_backlog=q, v=25.0)
            assert np.all(freqs >= network.freq_min - 1e-12)
            assert np.all(freqs <= network.freq_max + 1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        q=st.floats(0.0, 1_000.0),
        v=st.floats(0.1, 1_000.0),
        seed=st.integers(0, 1_000),
    )
    def test_property_better_than_random_feasible_frequencies(
        self, q: float, v: float, seed: int
    ) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])
        )
        budget = 1.0  # constant offset; does not affect the argmin
        ours = solve_p2b(network, state, assignment, queue_backlog=q, v=v)
        our_objective = dpp_objective(
            network, state, assignment, ours, queue_backlog=q, v=v, budget=budget
        )
        rng = np.random.default_rng(seed)
        random_freqs = rng.uniform(network.freq_min, network.freq_max)
        random_objective = dpp_objective(
            network, state, assignment, random_freqs,
            queue_backlog=q, v=v, budget=budget,
        )
        assert our_objective <= random_objective + 1e-6 * abs(random_objective)

    def test_monotone_in_queue_pressure(self, setup) -> None:
        """Higher backlog -> lower (or equal) frequencies everywhere."""
        network, state, assignment = setup
        previous = solve_p2b(network, state, assignment, queue_backlog=0.0, v=50.0)
        for q in (1.0, 10.0, 100.0, 1_000.0):
            current = solve_p2b(network, state, assignment, queue_backlog=q, v=50.0)
            assert np.all(current <= previous + 1e-6)
            previous = current

    def test_monotone_in_v(self, setup) -> None:
        """Higher V (latency weight) -> higher (or equal) frequencies."""
        network, state, assignment = setup
        previous = solve_p2b(network, state, assignment, queue_backlog=50.0, v=0.1)
        for v in (1.0, 10.0, 100.0):
            current = solve_p2b(network, state, assignment, queue_backlog=50.0, v=v)
            assert np.all(current >= previous - 1e-6)
            previous = current
