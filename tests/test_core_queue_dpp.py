"""Tests for the virtual queue, the DPP objective, and BDMA."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bdma import cgba_p2a_solver, solve_p2_bdma
from repro.core.drift_penalty import dpp_objective, energy_cost, theta
from repro.core.latency import optimal_total_latency
from repro.core.state import Assignment
from repro.core.virtual_queue import VirtualQueue
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace

from conftest import make_tiny_network, make_tiny_state


class TestVirtualQueue:
    def test_update_rule_eq21(self) -> None:
        queue = VirtualQueue(0.0)
        assert queue.update(3.0) == 3.0
        assert queue.update(-1.0) == 2.0
        assert queue.update(-10.0) == 0.0  # clipped at zero
        assert queue.update(0.5) == 0.5

    def test_history_and_average(self) -> None:
        queue = VirtualQueue(1.0)
        queue.update(1.0)
        queue.update(1.0)
        np.testing.assert_allclose(queue.history(), [1.0, 2.0, 3.0])
        assert queue.time_average() == pytest.approx(2.0)

    def test_reset(self) -> None:
        queue = VirtualQueue(5.0)
        queue.update(10.0)
        queue.reset()
        assert queue.backlog == 0.0
        assert queue.history().size == 1

    def test_negative_initial_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            VirtualQueue(-1.0)

    @given(thetas=st.lists(st.floats(-10.0, 10.0), min_size=1, max_size=50))
    def test_property_backlog_never_negative(self, thetas: list[float]) -> None:
        queue = VirtualQueue(0.0)
        for th in thetas:
            assert queue.update(th) >= 0.0

    @given(thetas=st.lists(st.floats(-5.0, 5.0), min_size=1, max_size=50))
    def test_property_queue_dominates_running_sum(self, thetas) -> None:
        """Q(T) >= sum(theta) for any trajectory -- the stability lemma."""
        queue = VirtualQueue(0.0)
        for th in thetas:
            queue.update(th)
        assert queue.backlog >= sum(thetas) - 1e-9


class TestDriftPenalty:
    def test_objective_composition(self) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])
        )
        freqs = np.array([2.0, 2.5, 3.0])
        v, q, budget = 40.0, 7.0, 30.0
        value = dpp_objective(
            network, state, assignment, freqs, queue_backlog=q, v=v, budget=budget
        )
        latency = optimal_total_latency(network, state, assignment, freqs)
        expected = v * latency + q * (
            energy_cost(network, freqs, state.price) - budget
        )
        assert value == pytest.approx(expected, rel=1e-12)

    def test_theta_sign(self) -> None:
        network = make_tiny_network()
        freqs = np.full(3, 1.8)
        cost = energy_cost(network, freqs, 0.5)
        assert theta(network, freqs, 0.5, cost + 1.0) < 0.0
        assert theta(network, freqs, 0.5, cost - 1.0) > 0.0


class TestBDMA:
    @pytest.fixture
    def setup(self):
        network = make_tiny_network()
        state = make_tiny_state()
        space = StrategySpace(network, state.coverage())
        return network, state, space

    def test_returns_feasible_decision(self, setup) -> None:
        network, state, space = setup
        result = solve_p2_bdma(
            network, state, space, np.random.default_rng(0),
            queue_backlog=5.0, v=50.0, budget=20.0, z=3,
        )
        assert np.all(result.frequencies >= network.freq_min)
        assert np.all(result.frequencies <= network.freq_max)
        for i in range(network.num_devices):
            assert space.contains(
                i,
                int(result.assignment.bs_of[i]),
                int(result.assignment.server_of[i]),
            )

    def test_objective_matches_reported_decision(self, setup) -> None:
        network, state, space = setup
        result = solve_p2_bdma(
            network, state, space, np.random.default_rng(1),
            queue_backlog=5.0, v=50.0, budget=20.0, z=3,
        )
        recomputed = dpp_objective(
            network, state, result.assignment, result.frequencies,
            queue_backlog=5.0, v=50.0, budget=20.0,
        )
        assert result.objective == pytest.approx(recomputed, rel=1e-9)

    def test_objective_history_has_z_entries_and_best_is_min(self, setup) -> None:
        network, state, space = setup
        result = solve_p2_bdma(
            network, state, space, np.random.default_rng(2),
            queue_backlog=10.0, v=25.0, budget=15.0, z=4,
        )
        assert len(result.objective_history) == 4
        assert result.objective == pytest.approx(min(result.objective_history))

    def test_more_rounds_never_worse(self, setup) -> None:
        network, state, space = setup
        objectives = []
        for z in (1, 2, 4):
            result = solve_p2_bdma(
                network, state, space, np.random.default_rng(3),
                queue_backlog=10.0, v=25.0, budget=15.0, z=z, warm_start=True,
            )
            objectives.append(result.objective)
        assert objectives[1] <= objectives[0] + 1e-9
        assert objectives[2] <= objectives[1] + 1e-9

    def test_invalid_parameters_rejected(self, setup) -> None:
        network, state, space = setup
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            solve_p2_bdma(network, state, space, rng,
                          queue_backlog=1.0, v=1.0, budget=1.0, z=0)
        with pytest.raises(ConfigurationError):
            solve_p2_bdma(network, state, space, rng,
                          queue_backlog=1.0, v=0.0, budget=1.0)
        with pytest.raises(ConfigurationError):
            solve_p2_bdma(network, state, space, rng,
                          queue_backlog=-1.0, v=1.0, budget=1.0)

    def test_custom_p2a_solver_is_used(self, setup) -> None:
        network, state, space = setup
        calls = []

        def spy_solver(network, state, space, frequencies, rng, *, initial):
            calls.append(frequencies.copy())
            bs_of, server_of = space.random_assignment(rng)
            return Assignment(bs_of=bs_of, server_of=server_of)

        solve_p2_bdma(
            network, state, space, np.random.default_rng(4),
            queue_backlog=1.0, v=10.0, budget=5.0, z=3, p2a_solver=spy_solver,
        )
        assert len(calls) == 3
        # First round must start from Omega^L (Algorithm 2, line 1).
        np.testing.assert_allclose(calls[0], network.freq_min)

    def test_literal_algorithm_without_warm_start(self, setup) -> None:
        network, state, space = setup
        result = solve_p2_bdma(
            network, state, space, np.random.default_rng(5),
            queue_backlog=5.0, v=50.0, budget=20.0, z=2, warm_start=False,
        )
        assert np.isfinite(result.objective)

    @settings(max_examples=15, deadline=None)
    @given(
        q=st.floats(0.0, 100.0),
        v=st.floats(1.0, 500.0),
        seed=st.integers(0, 500),
    )
    def test_property_beats_random_feasible_decisions(
        self, q: float, v: float, seed: int
    ) -> None:
        """Theorem 3's spirit: BDMA's P2 objective beats random decisions."""
        network = make_tiny_network()
        state = make_tiny_state()
        space = StrategySpace(network, state.coverage())
        budget = 10.0
        result = solve_p2_bdma(
            network, state, space, np.random.default_rng(seed),
            queue_backlog=q, v=v, budget=budget, z=2,
        )
        rng = np.random.default_rng(seed + 1)
        bs_of, server_of = space.random_assignment(rng)
        random_assignment = Assignment(bs_of=bs_of, server_of=server_of)
        random_freqs = rng.uniform(network.freq_min, network.freq_max)
        random_objective = dpp_objective(
            network, state, random_assignment, random_freqs,
            queue_backlog=q, v=v, budget=budget,
        )
        assert result.objective <= random_objective + 1e-9


class TestCgbaP2ASolverFactory:
    def test_factory_solves(self) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        space = StrategySpace(network, state.coverage())
        solver = cgba_p2a_solver(slack=0.0)
        assignment = solver(
            network, state, space, np.full(3, 2.0),
            np.random.default_rng(0), initial=None,
        )
        assert assignment.num_devices == 4
