"""Tests for state/decision types and constraint validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocation import optimal_allocation
from repro.core.state import (
    Assignment,
    Decision,
    ResourceAllocation,
    SlotState,
    validate_decision,
)
from repro.exceptions import ValidationError

from conftest import make_tiny_network, make_tiny_state


class TestSlotState:
    def test_dimensions(self) -> None:
        state = make_tiny_state()
        assert state.num_devices == 4
        assert state.num_base_stations == 2

    def test_coverage_mask_from_h(self) -> None:
        state = make_tiny_state()
        cov = state.coverage()
        np.testing.assert_array_equal(
            cov, [[True, False], [True, False], [True, True], [True, True]]
        )

    def test_shape_mismatch_rejected(self) -> None:
        with pytest.raises(ValidationError):
            SlotState(
                t=0,
                cycles=np.array([1.0, 2.0]),
                bits=np.array([1.0, 2.0]),
                spectral_efficiency=np.ones((3, 2)),
                price=1.0,
            )

    def test_negative_price_rejected(self) -> None:
        with pytest.raises(ValidationError):
            SlotState(
                t=0,
                cycles=np.array([1.0]),
                bits=np.array([1.0]),
                spectral_efficiency=np.ones((1, 1)),
                price=-1.0,
            )

    def test_negative_h_rejected(self) -> None:
        with pytest.raises(ValidationError):
            SlotState(
                t=0,
                cycles=np.array([1.0]),
                bits=np.array([1.0]),
                spectral_efficiency=np.array([[-1.0]]),
                price=1.0,
            )


class TestAssignment:
    def test_one_hot_matrices_satisfy_constraints_1_2(self) -> None:
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])
        )
        x = assignment.x_matrix(2)
        y = assignment.y_matrix(3)
        np.testing.assert_array_equal(x.sum(axis=1), 1.0)  # Eq. (1)
        np.testing.assert_array_equal(y.sum(axis=1), 1.0)  # Eq. (2)
        assert x[2, 1] == 1.0
        assert y[3, 2] == 1.0

    def test_group_queries(self) -> None:
        assignment = Assignment(
            bs_of=np.array([0, 0, 1]), server_of=np.array([2, 1, 1])
        )
        np.testing.assert_array_equal(assignment.devices_on_bs(0), [0, 1])
        np.testing.assert_array_equal(assignment.devices_on_server(1), [1, 2])
        np.testing.assert_array_equal(assignment.devices_on_server(0), [])

    def test_replace_is_functional(self) -> None:
        a = Assignment(bs_of=np.array([0, 0]), server_of=np.array([0, 0]))
        b = a.replace(1, 1, 2)
        assert int(a.bs_of[1]) == 0
        assert int(b.bs_of[1]) == 1
        assert int(b.server_of[1]) == 2

    def test_shape_mismatch_rejected(self) -> None:
        with pytest.raises(ValidationError):
            Assignment(bs_of=np.array([0, 1]), server_of=np.array([0]))


class TestResourceAllocation:
    def test_shares_must_be_in_unit_interval(self) -> None:
        with pytest.raises(ValidationError):
            ResourceAllocation(
                access_share=np.array([1.5]),
                fronthaul_share=np.array([0.5]),
                compute_share=np.array([0.5]),
            )
        with pytest.raises(ValidationError):
            ResourceAllocation(
                access_share=np.array([0.5]),
                fronthaul_share=np.array([-0.1]),
                compute_share=np.array([0.5]),
            )


class TestValidateDecision:
    def make_valid_decision(self):
        network = make_tiny_network()
        state = make_tiny_state()
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 0]), server_of=np.array([0, 1, 2, 0])
        )
        allocation = optimal_allocation(network, state, assignment)
        frequencies = np.array([2.0, 2.5, 3.0])
        return network, state, Decision(
            assignment=assignment, allocation=allocation, frequencies=frequencies
        )

    def test_valid_decision_passes(self) -> None:
        network, state, decision = self.make_valid_decision()
        validate_decision(network, state, decision)

    def test_uncovered_base_station_rejected(self) -> None:
        network, state, decision = self.make_valid_decision()
        bad = Assignment(
            bs_of=np.array([1, 0, 1, 0]),  # device 0 is not covered by BS1
            server_of=decision.assignment.server_of,
        )
        with pytest.raises(ValidationError, match="does not cover"):
            validate_decision(
                network,
                state,
                Decision(
                    assignment=bad,
                    allocation=decision.allocation,
                    frequencies=decision.frequencies,
                ),
            )

    def test_unreachable_server_rejected(self) -> None:
        network, state, decision = self.make_valid_decision()
        bad = Assignment(
            bs_of=np.array([0, 0, 1, 0]),
            server_of=np.array([2, 1, 2, 0]),  # server 2 not behind BS0
        )
        allocation = decision.allocation
        with pytest.raises(ValidationError, match="constraint \\(3\\)"):
            validate_decision(
                network,
                state,
                Decision(
                    assignment=bad,
                    allocation=allocation,
                    frequencies=decision.frequencies,
                ),
            )

    def test_overcommitted_compute_rejected(self) -> None:
        network, state, decision = self.make_valid_decision()
        shares = decision.allocation
        bad = ResourceAllocation(
            access_share=shares.access_share,
            fronthaul_share=shares.fronthaul_share,
            compute_share=np.ones_like(shares.compute_share),  # sums to 2 on S0
        )
        with pytest.raises(ValidationError, match="compute shares"):
            validate_decision(
                network,
                state,
                Decision(
                    assignment=decision.assignment,
                    allocation=bad,
                    frequencies=decision.frequencies,
                ),
            )

    def test_frequency_out_of_bounds_rejected(self) -> None:
        network, state, decision = self.make_valid_decision()
        with pytest.raises(ValidationError, match="frequency"):
            validate_decision(
                network,
                state,
                Decision(
                    assignment=decision.assignment,
                    allocation=decision.allocation,
                    frequencies=np.array([2.0, 2.5, 4.0]),
                ),
            )
