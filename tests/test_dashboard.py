"""Tests for the live terminal dashboard (repro.obs.dashboard)."""

from __future__ import annotations

import io

import repro
from repro.obs import Dashboard, MonitorSuite, FeasibilityMonitor, Probe


def feed_slot(dash: Dashboard, t: int, *, latency: float = 0.4,
              cost: float = 0.6, backlog: float = 1.0) -> None:
    dash.emit({"kind": "gauge", "name": "queue.backlog", "value": backlog})
    dash.emit({"kind": "gauge", "name": "slot.price", "value": 0.01})
    dash.emit({"kind": "counter", "name": "engine.moves", "value": 3.0})
    dash.emit({"kind": "event", "name": "slot",
               "data": {"t": t, "latency": latency, "cost": cost}})


class TestRendering:
    def test_frame_shows_series_and_averages(self) -> None:
        dash = Dashboard(budget=0.75, stream=io.StringIO())
        for t in range(3):
            feed_slot(dash, t)
        frame = dash.render()
        assert "slot 2" in frame
        assert "budget 0.75" in frame
        for label in ("backlog", "latency", "cost", "price", "engine"):
            assert label in frame
        assert "engine.moves=9" in frame
        assert "alerts   (none)" in frame

    def test_empty_series_render_placeholder(self) -> None:
        dash = Dashboard(stream=io.StringIO())
        # A slot event with no gauges: price/backlog series stay empty,
        # but the frame must render rather than raise.
        dash.emit({"kind": "event", "name": "slot",
                   "data": {"t": 0, "latency": 0.4, "cost": 0.6}})
        assert "(no data)" in dash.render()

    def test_alerts_panel_lists_bus_alerts(self) -> None:
        dash = Dashboard(stream=io.StringIO())
        dash.emit({"kind": "event", "name": "alert",
                   "data": {"severity": "critical", "monitor": "budget",
                            "message": "over budget"}})
        feed_slot(dash, 0)
        frame = dash.render()
        assert "1 raised" in frame
        assert "[critical] budget: over budget" in frame

    def test_ascii_only_is_pure_7bit(self) -> None:
        dash = Dashboard(stream=io.StringIO(), ascii_only=True)
        for t in range(6):
            feed_slot(dash, t, latency=0.1 * (t + 1), backlog=float(t))
        frame = dash.render()
        assert frame == frame.encode("ascii", "replace").decode("ascii")

    def test_unicode_ramp_used_by_default(self) -> None:
        dash = Dashboard(stream=io.StringIO())
        for t in range(6):
            feed_slot(dash, t, latency=0.1 * (t + 1), backlog=float(t))
        assert any(ord(ch) > 127 for ch in dash.render())


class TestStreamBehaviour:
    def test_frames_written_per_slot_without_ansi(self) -> None:
        stream = io.StringIO()
        dash = Dashboard(stream=stream, use_ansi=False)
        for t in range(2):
            feed_slot(dash, t)
        out = stream.getvalue()
        assert out.count("slot 0") == 1
        assert out.count("slot 1") == 1
        assert "\x1b[" not in out

    def test_ansi_mode_redraws_in_place(self) -> None:
        stream = io.StringIO()
        dash = Dashboard(stream=stream, use_ansi=True)
        feed_slot(dash, 0)
        assert stream.getvalue().startswith("\x1b[H\x1b[J")

    def test_refresh_every_skips_frames(self) -> None:
        stream = io.StringIO()
        dash = Dashboard(stream=stream, use_ansi=False, refresh_every=2)
        for t in range(4):
            feed_slot(dash, t)
        out = stream.getvalue()
        assert "slot 1" in out and "slot 3" in out
        assert "slot 0 " not in out

    def test_end_to_end_with_probe_and_monitors(self) -> None:
        stream = io.StringIO()
        probe = Probe()
        MonitorSuite([FeasibilityMonitor()]).attach(probe)
        dash = Dashboard(stream=stream, use_ansi=False)
        probe.add_sink(dash)
        repro.api.run(
            controller="dpp", horizon=3, seed=7, z=1,
            scenario_config=repro.ScenarioConfig(num_devices=8),
            tracer=probe,
        )
        dash.close()
        out = stream.getvalue()
        assert "slot 2" in out
        assert "backlog" in out
        assert "engine" in out
