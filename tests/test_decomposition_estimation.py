"""Tests for seasonal decomposition and trace-model fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.decomposition import (
    periodicity_strength,
    seasonal_decompose,
)
from repro.exceptions import ConfigurationError
from repro.workload.estimation import (
    fit_periodic_profile,
    fit_price_model,
    fit_task_generator,
)
from repro.workload.traces import diurnal_profile, synthetic_video_views


def make_periodic_series(
    period: int = 24,
    cycles: int = 10,
    noise: float = 0.0,
    seed: int = 0,
    level: float = 100.0,
) -> np.ndarray:
    profile = diurnal_profile(period=period)
    series = level * np.tile(profile, cycles)
    if noise > 0.0:
        series = series + noise * np.random.default_rng(seed).standard_normal(
            series.size
        )
    return series


class TestSeasonalDecompose:
    def test_reconstruction_is_exact(self) -> None:
        series = make_periodic_series(noise=5.0)
        decomposition = seasonal_decompose(series, 24)
        np.testing.assert_allclose(
            decomposition.reconstructed(), series, rtol=1e-12
        )

    def test_seasonal_is_zero_mean_and_periodic(self) -> None:
        series = make_periodic_series(noise=2.0)
        decomposition = seasonal_decompose(series, 24)
        assert abs(float(decomposition.seasonal_profile.mean())) < 1e-9
        np.testing.assert_allclose(
            decomposition.seasonal[:24], decomposition.seasonal[24:48]
        )

    def test_recovers_clean_profile(self) -> None:
        series = make_periodic_series(noise=0.0)
        decomposition = seasonal_decompose(series, 24)
        expected = series[:24] - series[:24].mean()
        np.testing.assert_allclose(
            decomposition.seasonal_profile, expected, atol=1e-6
        )
        assert float(np.abs(decomposition.residual).max()) < 1e-6

    def test_level_tracks_slow_drift(self) -> None:
        drift = np.linspace(100.0, 200.0, 24 * 10)
        series = make_periodic_series() + drift - 100.0
        decomposition = seasonal_decompose(series, 24)
        mid = decomposition.level[24:-24]
        assert np.all(np.diff(mid) >= -1e-6)  # level follows the ramp

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            seasonal_decompose(np.ones(10), 24)
        with pytest.raises(ConfigurationError):
            seasonal_decompose(np.ones(100), 1)

    def test_odd_period(self) -> None:
        profile = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
        series = np.tile(profile, 8)
        decomposition = seasonal_decompose(series, 5)
        np.testing.assert_allclose(
            decomposition.reconstructed(), series, rtol=1e-12
        )


class TestPeriodicityStrength:
    def test_clean_periodic_series_scores_high(self) -> None:
        assert periodicity_strength(make_periodic_series(), 24) > 0.99

    def test_white_noise_scores_low(self) -> None:
        noise = np.random.default_rng(0).standard_normal(24 * 20)
        assert periodicity_strength(noise, 24) < 0.2

    def test_monotone_in_noise_level(self) -> None:
        strengths = [
            periodicity_strength(make_periodic_series(noise=n, seed=1), 24)
            for n in (0.0, 10.0, 100.0)
        ]
        assert strengths[0] > strengths[1] > strengths[2]

    @settings(max_examples=20, deadline=None)
    @given(noise=st.floats(0.0, 50.0), seed=st.integers(0, 100))
    def test_property_in_unit_interval(self, noise: float, seed: int) -> None:
        value = periodicity_strength(
            make_periodic_series(noise=noise, seed=seed), 24
        )
        assert 0.0 <= value <= 1.0


class TestProfileFit:
    def test_recovers_shape_and_noise(self) -> None:
        true_profile = diurnal_profile(period=24)
        series = make_periodic_series(noise=3.0, level=100.0)
        fit = fit_periodic_profile(series, 24)
        assert fit.period == 24
        assert fit.profile.mean() == pytest.approx(1.0, abs=1e-6)
        # Shape matches the generating profile up to normalisation.
        normalised_truth = true_profile / true_profile.mean()
        np.testing.assert_allclose(fit.profile, normalised_truth, atol=0.03)
        assert fit.noise_cv == pytest.approx(3.0 / fit.mean_level, rel=0.3)
        assert fit.strength > 0.9

    def test_rejects_nonpositive_series(self) -> None:
        with pytest.raises(ConfigurationError):
            fit_periodic_profile(np.zeros(48), 24)


class TestFitPriceModel:
    def test_fitted_model_reproduces_trace_statistics(self) -> None:
        rng = np.random.default_rng(3)
        from repro.energy.pricing import PeriodicPriceModel, synthetic_nyiso_trend

        truth = PeriodicPriceModel(synthetic_nyiso_trend(), noise_std=2.5)
        trace = truth.generate(24 * 30, rng)
        fitted = fit_price_model(trace)
        assert fitted.period == 24
        fitted_trend = np.array([fitted.trend(t) for t in range(24)])
        true_trend = np.array([truth.trend(t) for t in range(24)])
        np.testing.assert_allclose(fitted_trend, true_trend, atol=1.5)
        assert fitted.noise_std == pytest.approx(2.5, rel=0.3)

    def test_negative_prices_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            fit_price_model(np.array([-1.0] * 48))


class TestFitTaskGenerator:
    def test_generator_follows_trace_shape(self) -> None:
        trace = synthetic_video_views(30, np.random.default_rng(4))
        generator = fit_task_generator(
            trace, num_devices=10, rng=np.random.default_rng(5)
        )
        assert generator.num_devices == 10
        assert generator.period == 24
        # Peak-hour demand exceeds trough-hour demand like the trace.
        peak_hour = int(np.argmax(generator.profile))
        trough_hour = int(np.argmin(generator.profile))
        trend_peak, _ = generator.trend(peak_hour)
        trend_trough, _ = generator.trend(trough_hour)
        assert trend_peak.mean() > 1.3 * trend_trough.mean()

    def test_deterministic_means_without_rng(self) -> None:
        trace = make_periodic_series()
        generator = fit_task_generator(trace, num_devices=4)
        assert np.all(generator.base_cycles == generator.base_cycles[0])

    def test_validation(self) -> None:
        trace = make_periodic_series()
        with pytest.raises(ConfigurationError):
            fit_task_generator(trace, num_devices=0)
        with pytest.raises(ConfigurationError):
            fit_task_generator(trace, num_devices=3, heterogeneity=1.5)
