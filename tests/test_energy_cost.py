"""Tests for per-slot energy cost and budget helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.cost import (
    max_slot_cost,
    min_slot_cost,
    slot_energy_cost,
    suggest_budget,
)
from repro.energy.models import LinearEnergyModel, QuadraticEnergyModel
from repro.energy.pricing import ConstantPriceModel, PeriodicPriceModel
from repro.exceptions import ConfigurationError


@pytest.fixture
def models() -> list:
    return [
        QuadraticEnergyModel(a=1.0, b=0.0, c=2.0),
        LinearEnergyModel(slope=3.0, intercept=1.0),
    ]


class TestSlotCost:
    def test_sum_of_powers_times_price(self, models: list) -> None:
        freqs = np.array([2.0, 3.0])
        # quad: 4 + 2 = 6; linear: 9 + 1 = 10; price 0.5 -> 8.0.
        assert slot_energy_cost(models, freqs, 0.5) == pytest.approx(8.0)

    def test_zero_price_means_zero_cost(self, models: list) -> None:
        assert slot_energy_cost(models, np.array([2.0, 3.0]), 0.0) == 0.0

    def test_mismatched_lengths_rejected(self, models: list) -> None:
        with pytest.raises(ConfigurationError):
            slot_energy_cost(models, np.array([2.0]), 1.0)

    def test_min_below_max(self, models: list) -> None:
        lo = min_slot_cost(models, np.array([1.8, 1.8]), 1.0)
        hi = max_slot_cost(models, np.array([3.6, 3.6]), 1.0)
        assert lo < hi


class TestSuggestBudget:
    def test_interpolates_between_extremes(self, models: list) -> None:
        prices = ConstantPriceModel(2.0)
        fmin = np.array([1.0, 1.0])
        fmax = np.array([3.0, 3.0])
        lo = suggest_budget(models, fmin, fmax, prices, fraction=0.0)
        hi = suggest_budget(models, fmin, fmax, prices, fraction=1.0)
        mid = suggest_budget(models, fmin, fmax, prices, fraction=0.5)
        assert lo == pytest.approx(min_slot_cost(models, fmin, 2.0))
        assert hi == pytest.approx(max_slot_cost(models, fmax, 2.0))
        assert mid == pytest.approx((lo + hi) / 2.0)

    def test_uses_mean_trend_price(self, models: list) -> None:
        prices = PeriodicPriceModel(np.array([1.0, 3.0]))  # mean 2.0
        via_periodic = suggest_budget(
            models, np.array([1.0, 1.0]), np.array([3.0, 3.0]), prices, fraction=0.3
        )
        via_constant = suggest_budget(
            models,
            np.array([1.0, 1.0]),
            np.array([3.0, 3.0]),
            ConstantPriceModel(2.0),
            fraction=0.3,
        )
        assert via_periodic == pytest.approx(via_constant)

    def test_fraction_out_of_range_rejected(self, models: list) -> None:
        prices = ConstantPriceModel(1.0)
        with pytest.raises(ConfigurationError):
            suggest_budget(
                models, np.array([1.0, 1.0]), np.array([3.0, 3.0]), prices,
                fraction=1.5,
            )
