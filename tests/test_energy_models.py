"""Tests for energy-consumption models and the i7-3770K fit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.energy.cpu_data import (
    I7_3770K_FREQUENCIES_GHZ,
    I7_3770K_POWER_WATTS,
    fit_quadratic_power_curve,
)
from repro.energy.models import (
    CubicEnergyModel,
    LinearEnergyModel,
    PiecewiseLinearEnergyModel,
    QuadraticEnergyModel,
    ScaledEnergyModel,
    perturbed_quadratic_model,
)
from repro.exceptions import ConfigurationError


class TestCpuData:
    def test_measurements_are_convex_increasing(self) -> None:
        power = I7_3770K_POWER_WATTS
        assert np.all(np.diff(power) > 0)
        slopes = np.diff(power) / np.diff(I7_3770K_FREQUENCIES_GHZ)
        assert np.all(np.diff(slopes) >= -1e-9)

    def test_fit_is_convex_and_accurate(self) -> None:
        a, b, c = fit_quadratic_power_curve()
        assert a > 0.0
        fitted = a * I7_3770K_FREQUENCIES_GHZ**2 + b * I7_3770K_FREQUENCIES_GHZ + c
        rel_err = np.abs(fitted - I7_3770K_POWER_WATTS) / I7_3770K_POWER_WATTS
        assert float(rel_err.max()) < 0.03

    def test_fit_rejects_mismatched_inputs(self) -> None:
        with pytest.raises(ValueError):
            fit_quadratic_power_curve(np.array([1.0, 2.0]), np.array([1.0]))

    def test_fit_rejects_too_few_points(self) -> None:
        with pytest.raises(ValueError):
            fit_quadratic_power_curve(np.array([1.0, 2.0]), np.array([1.0, 2.0]))


class TestQuadraticModel:
    def test_power_evaluation(self) -> None:
        model = QuadraticEnergyModel(a=2.0, b=1.0, c=3.0)
        assert model.power(2.0) == pytest.approx(2 * 4 + 2 + 3)

    def test_derivative_exact(self) -> None:
        model = QuadraticEnergyModel(a=2.0, b=1.0, c=3.0)
        assert model.derivative(1.5) == pytest.approx(2 * 2 * 1.5 + 1)

    def test_vectorised_matches_scalar(self) -> None:
        model = QuadraticEnergyModel(a=2.0, b=-0.5, c=3.0)
        freqs = np.linspace(1.8, 3.6, 7)
        np.testing.assert_allclose(
            model.power_many(freqs), [model.power(float(f)) for f in freqs]
        )

    def test_concave_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            QuadraticEnergyModel(a=-1.0, b=0.0, c=0.0)

    def test_convexity_check(self) -> None:
        assert QuadraticEnergyModel(a=1.0, b=0.0, c=0.0).check_convex(1.0, 4.0)


class TestOtherModels:
    def test_linear_model(self) -> None:
        model = LinearEnergyModel(slope=3.0, intercept=1.0)
        assert model.power(2.0) == pytest.approx(7.0)
        assert model.derivative(99.0) == pytest.approx(3.0)
        assert model.check_convex(0.0, 10.0)

    def test_linear_negative_slope_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            LinearEnergyModel(slope=-1.0, intercept=0.0)

    def test_cubic_model(self) -> None:
        model = CubicEnergyModel(kappa=2.0, static=1.0)
        assert model.power(2.0) == pytest.approx(17.0)
        assert model.derivative(2.0) == pytest.approx(24.0)
        assert model.check_convex(0.0, 5.0)

    def test_piecewise_linear_interpolates(self) -> None:
        model = PiecewiseLinearEnergyModel(
            np.array([1.0, 2.0, 3.0]), np.array([10.0, 12.0, 16.0])
        )
        assert model.power(1.5) == pytest.approx(11.0)
        assert model.power(2.5) == pytest.approx(14.0)

    def test_piecewise_nonconvex_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="not convex"):
            PiecewiseLinearEnergyModel(
                np.array([1.0, 2.0, 3.0]), np.array([10.0, 15.0, 16.0])
            )

    def test_piecewise_unsorted_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            PiecewiseLinearEnergyModel(
                np.array([2.0, 1.0]), np.array([1.0, 2.0])
            )

    def test_scaled_model(self) -> None:
        base = QuadraticEnergyModel(a=1.0, b=0.0, c=2.0)
        scaled = ScaledEnergyModel(base=base, scale=16.0)
        assert scaled.power(2.0) == pytest.approx(16.0 * 6.0)
        assert scaled.derivative(2.0) == pytest.approx(16.0 * 4.0)

    def test_scaled_rejects_nonpositive_scale(self) -> None:
        base = LinearEnergyModel(slope=1.0, intercept=0.0)
        with pytest.raises(ConfigurationError):
            ScaledEnergyModel(base=base, scale=0.0)


class TestPerturbedQuadratic:
    def test_follows_paper_recipe(self) -> None:
        # With a known rng, reproduce the draw by hand.
        a, b, c = fit_quadratic_power_curve()
        rng = np.random.default_rng(9)
        e = float(np.random.default_rng(9).standard_normal())
        model = perturbed_quadratic_model(rng)
        assert model.a == pytest.approx(a * (1 + 0.01 * e))
        assert model.b == pytest.approx(b * (1 + 0.1 * e))
        assert model.c == pytest.approx(c * (1 + 0.1 * e))

    @given(seed=st.integers(0, 5_000))
    def test_property_always_convex(self, seed: int) -> None:
        model = perturbed_quadratic_model(np.random.default_rng(seed))
        assert model.a >= 0.0
        assert model.check_convex(1.8, 3.6)

    def test_population_spread(self) -> None:
        rng = np.random.default_rng(0)
        models = [perturbed_quadratic_model(rng) for _ in range(64)]
        # Different servers get genuinely different curves; the paper's
        # recipe spreads the curves most near the ends of the range
        # (the perturbations nearly cancel around 2.7 GHz).
        low_end = np.array([m.power(1.8) for m in models])
        assert low_end.std() > 0.3
        coeffs_a = np.array([m.a for m in models])
        assert coeffs_a.std() > 0.0
