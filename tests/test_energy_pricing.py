"""Tests for the electricity-price processes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.energy.pricing import (
    ConstantPriceModel,
    PeriodicPriceModel,
    TracePriceModel,
    synthetic_nyiso_trend,
)
from repro.exceptions import ConfigurationError


class TestConstantPrice:
    def test_always_the_same(self, rng: np.random.Generator) -> None:
        model = ConstantPriceModel(30.0)
        assert model.price(0, rng) == 30.0
        assert model.price(99, rng) == 30.0
        assert model.trend(5) == 30.0

    def test_negative_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            ConstantPriceModel(-1.0)


class TestPeriodicPrice:
    def test_trend_wraps_with_period(self, rng: np.random.Generator) -> None:
        trend = np.array([10.0, 20.0, 30.0])
        model = PeriodicPriceModel(trend)
        assert model.period == 3
        assert model.trend(0) == 10.0
        assert model.trend(4) == 20.0
        assert model.price(5, rng) == 30.0  # zero noise -> exact trend

    def test_noise_perturbs_but_respects_floor(self) -> None:
        model = PeriodicPriceModel(
            np.array([1.0]), noise_std=100.0, floor=0.0
        )
        prices = model.generate(500, np.random.default_rng(0))
        assert np.all(prices >= 0.0)
        assert prices.std() > 1.0

    def test_generate_matches_price_distributionally(self) -> None:
        trend = synthetic_nyiso_trend()
        model = PeriodicPriceModel(trend, noise_std=2.0)
        trace = model.generate(24 * 50, np.random.default_rng(1))
        # Hourly means across days track the trend.
        hourly = trace.reshape(-1, 24).mean(axis=0)
        np.testing.assert_allclose(hourly, trend, atol=1.0)

    def test_empty_trend_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            PeriodicPriceModel(np.array([]))

    def test_negative_trend_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            PeriodicPriceModel(np.array([1.0, -2.0]))

    def test_negative_noise_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            PeriodicPriceModel(np.array([1.0]), noise_std=-1.0)


class TestTracePrice:
    def test_replays_and_wraps(self, rng: np.random.Generator) -> None:
        model = TracePriceModel(np.array([5.0, 7.0]))
        assert model.price(0, rng) == 5.0
        assert model.price(3, rng) == 7.0
        assert model.period == 2

    def test_empty_trace_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            TracePriceModel(np.array([]))


class TestSyntheticNyiso:
    def test_shape_and_range(self) -> None:
        trend = synthetic_nyiso_trend()
        assert trend.shape == (24,)
        assert np.all(trend > 0.0)
        # Base price overnight, elevated at the peaks.
        assert trend.min() == pytest.approx(28.0, abs=2.0)
        assert trend.max() > 45.0

    def test_two_peaks_morning_and_evening(self) -> None:
        trend = synthetic_nyiso_trend()
        morning = trend[6:11].max()
        evening = trend[17:22].max()
        midday = trend[12:15].min()
        night = trend[0:5].min()
        assert morning > midday
        assert evening > morning  # evening peak is taller by default
        assert night < midday + 5.0

    def test_periodicity_of_custom_period(self) -> None:
        trend = synthetic_nyiso_trend(period=48)
        assert trend.shape == (48,)

    def test_too_short_period_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            synthetic_nyiso_trend(period=1)

    @given(
        base=st.floats(5.0, 100.0),
        morning=st.floats(0.0, 50.0),
        evening=st.floats(0.0, 50.0),
    )
    def test_property_bounds(self, base: float, morning: float, evening: float) -> None:
        trend = synthetic_nyiso_trend(
            base_price=base, morning_peak=morning, evening_peak=evening
        )
        assert np.all(trend >= base - 1e-9)
        assert np.all(trend <= base + morning + evening + 1e-9)
