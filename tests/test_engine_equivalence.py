"""Fast engine vs reference engine: exact-equivalence and property tests.

The vectorized incremental engine is specified to replay the reference
dynamics *exactly* (same IEEE arithmetic, same tie-breaks, same
randomness consumption), so these tests assert bit-identical final
assignments -- not just close potentials -- across randomized games,
selection rules, and slacks, and audit the dirty-set tracking move by
move against a full recompute.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.cgba import solve_p2a_cgba
from repro.core.congestion_game import OffloadingCongestionGame
from repro.network.connectivity import StrategySpace
from repro.solvers.fast_engine import (
    FastBestResponseEngine,
    fast_best_response_dynamics,
    supports_batch,
)
from repro.solvers.potential_game import best_response_dynamics

from conftest import make_tiny_network, make_tiny_state


def random_instance(seed: int, num_devices: int = 12):
    """A small randomized P2-A instance keyed by *seed*."""
    scenario = repro.make_paper_scenario(
        seed=seed,
        config=repro.ScenarioConfig(num_devices=num_devices),
        num_base_stations=3,
        num_clusters=2,
        servers_per_cluster=2,
        num_macro_stations=1,
    )
    network = scenario.network
    state = next(iter(scenario.fresh_states(1)))
    space = StrategySpace(network, state.coverage())
    frequencies = network.freq_max.copy()
    return network, state, space, frequencies


def paired_games(network, state, space, frequencies, seed: int):
    """Two independent games starting from the same random profile."""
    bs_of, server_of = space.random_assignment(np.random.default_rng(seed))
    initial = repro.Assignment(bs_of=bs_of, server_of=server_of)
    make = lambda: OffloadingCongestionGame(  # noqa: E731
        network, state, space, frequencies, initial=initial
    )
    return make(), make()


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("slack", [0.0, 0.05])
    def test_same_equilibrium_on_randomized_games(self, seed: int, slack: float):
        network, state, space, frequencies = random_instance(seed)
        ref_game, fast_game = paired_games(network, state, space, frequencies, seed)
        ref = best_response_dynamics(ref_game, slack=slack)
        fast = fast_best_response_dynamics(fast_game, slack=slack)
        assert ref.converged and fast.converged
        assert ref.iterations == fast.iterations
        np.testing.assert_array_equal(
            ref_game.assignment().bs_of, fast_game.assignment().bs_of
        )
        np.testing.assert_array_equal(
            ref_game.assignment().server_of, fast_game.assignment().server_of
        )
        assert ref_game.potential() == pytest.approx(
            fast_game.potential(), rel=1e-12
        )
        assert ref.total_cost == pytest.approx(fast.total_cost, rel=1e-12)

    @pytest.mark.parametrize("selection", ["round_robin", "random"])
    def test_same_trajectory_under_other_selection_rules(self, selection: str):
        network, state, space, frequencies = random_instance(21)
        ref_game, fast_game = paired_games(network, state, space, frequencies, 5)
        ref = best_response_dynamics(
            ref_game,
            selection=selection,
            rng=np.random.default_rng(99),
            record_history=True,
        )
        fast = fast_best_response_dynamics(
            fast_game,
            selection=selection,
            rng=np.random.default_rng(99),
            record_history=True,
        )
        assert ref.iterations == fast.iterations
        assert ref.cost_history == fast.cost_history
        np.testing.assert_array_equal(
            ref_game.assignment().bs_of, fast_game.assignment().bs_of
        )

    def test_tiny_network_equivalence(self):
        network = make_tiny_network()
        state = make_tiny_state()
        space = StrategySpace(network, state.coverage())
        frequencies = np.array([2.0, 3.0, 2.5])
        for seed in range(5):
            ref_game, fast_game = paired_games(
                network, state, space, frequencies, seed
            )
            best_response_dynamics(ref_game)
            fast_best_response_dynamics(fast_game)
            np.testing.assert_array_equal(
                ref_game.assignment().server_of, fast_game.assignment().server_of
            )

    def test_cgba_engines_agree_and_reject_unknown(self):
        network, state, space, frequencies = random_instance(3)
        bs_of, server_of = space.random_assignment(np.random.default_rng(0))
        initial = repro.Assignment(bs_of=bs_of, server_of=server_of)
        ref = solve_p2a_cgba(
            network, state, space, frequencies, None,
            initial=initial, engine="reference",
        )
        fast = solve_p2a_cgba(
            network, state, space, frequencies, None,
            initial=initial, engine="fast",
        )
        assert ref.total_latency == pytest.approx(fast.total_latency, rel=1e-12)
        assert fast.engine_stats is not None
        assert fast.engine_stats.moves == fast.iterations
        with pytest.raises(ValueError):
            solve_p2a_cgba(
                network, state, space, frequencies, None,
                initial=initial, engine="turbo",
            )


class TestBatchInterface:
    def test_batch_matches_scalar_best_responses(self):
        network, state, space, frequencies = random_instance(7)
        game, _ = paired_games(network, state, space, frequencies, 1)
        best_bs, best_server, best_cost, current = game.batch_best_responses()
        for i in range(game.num_players):
            (k, n), cost = game.best_response(i)
            assert (int(best_bs[i]), int(best_server[i])) == (k, n)
            assert best_cost[i] == cost  # bit-identical, not approx
            assert current[i] == game.player_cost(i)

    def test_batch_subset_matches_full(self):
        network, state, space, frequencies = random_instance(11)
        game, _ = paired_games(network, state, space, frequencies, 2)
        full = game.batch_best_responses()
        subset = np.array([0, 3, 7, 11], dtype=np.int64)
        sub = game.batch_best_responses(subset)
        for out_sub, out_full in zip(sub, full):
            np.testing.assert_array_equal(out_sub, out_full[subset])

    def test_supports_batch_detection(self):
        network, state, space, frequencies = random_instance(1)
        game, _ = paired_games(network, state, space, frequencies, 0)
        assert supports_batch(game)

    def test_move_delta_agrees_with_actual_move(self):
        network, state, space, frequencies = random_instance(13)
        game, _ = paired_games(network, state, space, frequencies, 4)
        rng = np.random.default_rng(17)
        for _ in range(60):
            player = int(rng.integers(game.num_players))
            ks, ns = space.pairs(player)
            j = int(rng.integers(ks.size))
            proposal = (int(ks[j]), int(ns[j]))
            before = game.total_cost()
            predicted = game.move_delta(player, proposal)
            game.move(player, proposal)
            after = game.total_cost()
            assert after - before == pytest.approx(predicted, rel=1e-9, abs=1e-12)

    def test_total_cost_of_matches_fresh_game(self):
        network, state, space, frequencies = random_instance(19)
        game, _ = paired_games(network, state, space, frequencies, 6)
        bs_of, server_of = space.random_assignment(np.random.default_rng(23))
        other = repro.Assignment(bs_of=bs_of, server_of=server_of)
        fresh = OffloadingCongestionGame(
            network, state, space, frequencies, initial=other
        )
        assert game.total_cost_of(other) == pytest.approx(
            fresh.total_cost(), rel=1e-12
        )


class TestDirtyTracking:
    def test_never_skips_an_eligible_player(self):
        """Gap parity after random move sequences.

        After every move the engine's cached gaps must equal a fresh
        full-sweep recompute; any mismatch means the dirty set missed a
        player whose best response changed.
        """
        for seed in (0, 1, 2):
            network, state, space, frequencies = random_instance(29 + seed)
            game, _ = paired_games(network, state, space, frequencies, seed)
            engine = FastBestResponseEngine(game, slack=0.0)
            rng = np.random.default_rng(seed)
            for _ in range(50):
                player = engine.select("random", rng)
                if player is None:
                    break
                engine.step(player)
                _, _, best, current = game.batch_best_responses()
                fresh = np.where(current > best, current - best, -np.inf)
                np.testing.assert_array_equal(engine.gaps, fresh)

    def test_affected_players_includes_mover_and_resource_sharers(self):
        network, state, space, frequencies = random_instance(31)
        game, _ = paired_games(network, state, space, frequencies, 3)
        player = 0
        old = game.strategy_of(player)
        ks, ns = space.pairs(player)
        new = (int(ks[-1]), int(ns[-1]))
        affected = game.affected_players(old, new)
        assert player in affected
        # Anyone currently sitting on a touched resource must be dirty.
        for other in range(game.num_players):
            k, n = game.strategy_of(other)
            if k in (old[0], new[0]) or n in (old[1], new[1]):
                assert other in affected


class TestStatsThreading:
    def test_counters_consistent(self):
        network, state, space, frequencies = random_instance(37)
        game, _ = paired_games(network, state, space, frequencies, 8)
        result = fast_best_response_dynamics(game)
        stats = result.stats
        assert stats is not None
        assert stats.moves == result.iterations
        assert stats.gap_recomputations >= game.num_players  # initial sweep
        assert stats.candidate_evaluations >= stats.gap_recomputations

    def test_reference_engine_reports_stats(self):
        network, state, space, frequencies = random_instance(41)
        game, _ = paired_games(network, state, space, frequencies, 9)
        result = best_response_dynamics(game)
        stats = result.stats
        assert stats is not None
        assert stats.moves == result.iterations
        # The naive engine recomputes every player every iteration.
        assert stats.gap_recomputations == game.num_players * (result.iterations + 1)
        assert stats.candidate_evaluations > 0

    def test_stats_flow_through_bdma_to_slot_record(self):
        scenario = repro.make_paper_scenario(
            seed=43,
            config=repro.ScenarioConfig(num_devices=10),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
        )
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng("engine-stats"),
            v=1e3,
            budget=5.0,
            z=2,
        )
        record = controller.step(next(iter(scenario.fresh_states(1))))
        assert record.engine_stats is not None
        assert record.engine_stats.moves >= 0
        assert record.engine_stats.gap_recomputations > 0


class TestControllerSpaceCache:
    def test_space_reused_when_coverage_static(self):
        scenario = repro.make_paper_scenario(
            seed=47,
            config=repro.ScenarioConfig(num_devices=10),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
        )
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng("cache"),
            v=1e3,
            budget=5.0,
            z=1,
        )
        states = list(scenario.fresh_states(2))
        first = controller.strategy_space(states[0])
        # Same coverage mask -> identical object, no rebuild.
        same = controller.strategy_space(
            repro.SlotState(
                t=1,
                cycles=states[1].cycles,
                bits=states[1].bits,
                spectral_efficiency=states[0].spectral_efficiency,
                price=states[1].price,
            )
        )
        assert same is first
        assert controller._space_reused

    def test_space_rebuilt_on_coverage_change(self):
        scenario = repro.make_paper_scenario(
            seed=53,
            config=repro.ScenarioConfig(num_devices=10),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
        )
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng("cache2"),
            v=1e3,
            budget=5.0,
            z=1,
        )
        state = next(iter(scenario.fresh_states(1)))
        first = controller.strategy_space(state)
        h = state.spectral_efficiency.copy()
        # Knock out one covered link (keeping every device covered).
        covered = np.argwhere(h > 0.0)
        for i, k in covered:
            if np.count_nonzero(h[i] > 0.0) > 1:
                h[i, k] = 0.0
                break
        changed = repro.SlotState(
            t=1,
            cycles=state.cycles,
            bits=state.bits,
            spectral_efficiency=h,
            price=state.price,
        )
        rebuilt = controller.strategy_space(changed)
        assert rebuilt is not first
        assert not controller._space_reused

    def test_repair_skipped_on_cache_hit(self, monkeypatch):
        scenario = repro.make_paper_scenario(
            seed=59,
            config=repro.ScenarioConfig(num_devices=10),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
        )
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng("cache3"),
            v=1e3,
            budget=5.0,
            z=1,
        )
        states = list(scenario.fresh_states(3))
        controller.step(states[0])
        space = controller._space
        calls = {"repair": 0}
        original = StrategySpace.repair

        def counting_repair(self, *args, **kwargs):
            calls["repair"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(StrategySpace, "repair", counting_repair)
        # The coverage mask can change between random slots; only a
        # cache-hit slot may skip repair, so replay slot 0's coverage.
        replay = repro.SlotState(
            t=1,
            cycles=states[1].cycles,
            bits=states[1].bits,
            spectral_efficiency=states[0].spectral_efficiency,
            price=states[1].price,
        )
        controller.step(replay)
        assert controller._space is space
        assert calls["repair"] == 0
