"""Smoke tests of the experiment runners at reduced parameters.

The full-parameter runs live in ``benchmarks/``; here each runner is
exercised with small sweeps to pin its interface, table rendering, and
(where cheap) its verification logic.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    RUNNERS,
    run_ablation_bdma_z,
    run_ablation_budget_pacing,
    run_ablation_greedy,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)


class TestRegistry:
    def test_all_figures_and_ablations_registered(self) -> None:
        assert set(RUNNERS) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "ablation-z", "ablation-freq", "ablation-greedy",
            "ablation-pacing", "robustness-faults", "robustness-chaos",
        }


class TestCheapRunners:
    def test_fig2(self) -> None:
        result = run_fig2(days=7)
        assert "Fig. 2" in result.table()
        result.verify()

    def test_fig3(self) -> None:
        result = run_fig3(num_samples=3)
        table = result.table()
        assert "server C" in table
        result.verify()


class TestReducedParameterRunners:
    def test_fig4_reduced(self) -> None:
        result = run_fig4(
            device_counts=(10, 16),
            seeds_per_size=1,
            exact_device_counts=(6,),
            bound_iterations=400,
        )
        table = result.table()
        assert "certified LB" in table
        # Per-row sanity rather than full verify (trend checks need the
        # full sweep, and the fractional bound is loose at tiny I where
        # the integrality gap has not yet closed).
        for row in result.paper_rows:
            assert row[1] <= row[3]  # CGBA beats ROPT
            assert row[5] < 2.62     # never worse than Theorem 2's bound
        assert result.reduced_rows[0][4] <= 1.1

    def test_fig5_reduced(self) -> None:
        # Tiny instances make timing ratios flaky (the exact solver may
        # finish within a few CGBA runtimes at I=6), so the full verify()
        # only runs at bench scale; check structure and the robust claim.
        result = run_fig5(device_counts=(10,), exact_device_counts=(6,))
        assert len(result.paper_rows) == 1
        assert len(result.exact_rows) == 1
        _, t_cgba, t_mcba, t_ropt = result.paper_rows[0]
        assert t_ropt < t_cgba
        assert result.exact_rows[0][3] > 0  # nodes explored

    def test_fig6_reduced(self) -> None:
        result = run_fig6(
            lambdas=(0.0, 0.12), seeds=(0,), num_devices=20
        )
        assert len(result.rows) == 2
        assert result.rows[1][2] <= result.rows[0][2]  # fewer iterations

    def test_fig7_reduced(self) -> None:
        result = run_fig7(
            v_values=(50.0, 100.0), num_devices=10, horizon=120, z=1
        )
        assert "convergence statistics" in result.table()
        for v in (50.0, 100.0):
            assert result.results[v].horizon == 120

    def test_fig8_reduced(self) -> None:
        result = run_fig8(
            v_values=(20.0, 200.0), num_devices=10, horizon=96, z=1
        )
        warm_backlogs = [result.warm[v][0] for v in (20.0, 200.0)]
        assert warm_backlogs[1] > warm_backlogs[0]

    def test_fig9_reduced(self) -> None:
        result = run_fig9(
            fractions=(0.3, 0.7),
            num_devices=10,
            horizon=48,
            mcba_iterations=200,
        )
        table = result.table()
        assert "BDMA-DPP latency" in table
        # Structural sanity; ordering claims need the full sweep.
        for fraction in (0.3, 0.7):
            assert result.budgets[fraction] > 0.0
            for name in ("BDMA-DPP", "MCBA-DPP", "ROPT-DPP"):
                assert result.latencies[name][fraction] > 0.0
        assert result.budgets[0.3] < result.budgets[0.7]

    def test_ablation_pacing_reduced(self) -> None:
        result = run_ablation_budget_pacing(
            strengths=(1.0,), num_devices=10, horizon=48
        )
        assert set(result.latencies) == {"constant", "paced x1"}
        assert result.average_budget > 0.0
        assert "Ablation D" in result.table()

    def test_fault_sweep_reduced(self) -> None:
        from repro.experiments import run_fault_sweep

        result = run_fault_sweep(
            unavailabilities=(0.0, 0.2), num_devices=8, horizon=24
        )
        assert len(result.rows) == 2
        assert result.rows[1][1] > 0.0  # downtime actually happened
        result.verify()

    def test_chaos_sweep_reduced(self) -> None:
        from repro.experiments import run_chaos_sweep

        result = run_chaos_sweep(num_devices=8, horizon=30)
        assert len(result.rows) == 3
        assert result.horizons == [30, 30, 30]  # never-abort, every level
        assert any(row[1] > 0 for row in result.rows[1:])  # faults injected
        result.verify()

    def test_ablation_z_reduced(self) -> None:
        result = run_ablation_bdma_z(
            z_values=(1, 3), seeds=(0,), num_devices=20
        )
        assert result.rows[1][1] <= result.rows[0][1] * 1.01

    def test_ablation_greedy_reduced(self) -> None:
        # At small I a lucky greedy pass can beat CGBA's equilibrium, so
        # the full verify() only runs at bench scale; check structure.
        result = run_ablation_greedy(seeds=(0, 1), num_devices=20)
        names = [row[0] for row in result.rows]
        assert names == ["CGBA(0)", "greedy joint", "greedy decoupled"]
        assert all(row[1] > 0 for row in result.rows)
        assert result.rows[0][2] == pytest.approx(1.0)
