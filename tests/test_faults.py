"""Tests for server-outage failure injection."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.drift_penalty import energy_cost
from repro.core.p2b import solve_p2b
from repro.core.state import Assignment, SlotState, validate_decision
from repro.exceptions import ConfigurationError, ValidationError
from repro.network.connectivity import StrategySpace
from repro.sim.faults import MarkovOutages, NoOutages

from conftest import make_tiny_network, make_tiny_state


def state_with_availability(mask) -> SlotState:
    base = make_tiny_state()
    return SlotState(
        t=base.t,
        cycles=base.cycles,
        bits=base.bits,
        spectral_efficiency=base.spectral_efficiency,
        price=base.price,
        available_servers=mask,
    )


class TestStateMask:
    def test_all_down_rejected(self) -> None:
        with pytest.raises(ValidationError):
            state_with_availability(np.zeros(3, dtype=bool))

    def test_validate_decision_rejects_offline_selection(self) -> None:
        network = make_tiny_network()
        state = state_with_availability(np.array([True, False, True]))
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]),
            server_of=np.array([0, 1, 2, 2]),  # server 1 is offline
        )
        from repro.core.allocation import optimal_allocation

        allocation = optimal_allocation(network, state, assignment)
        with pytest.raises(ValidationError, match="offline"):
            validate_decision(
                network,
                state,
                repro.Decision(
                    assignment=assignment,
                    allocation=allocation,
                    frequencies=np.full(3, 2.0),
                ),
            )


class TestStrategySpaceFiltering:
    def test_offline_servers_excluded(self) -> None:
        network = make_tiny_network()
        coverage = make_tiny_state().coverage()
        space = StrategySpace(
            network, coverage, np.array([True, False, True])
        )
        for i in range(4):
            _, ns = space.pairs(i)
            assert 1 not in ns.tolist()

    def test_cluster_outage_makes_small_cell_only_devices_reroute(self) -> None:
        network = make_tiny_network()
        coverage = make_tiny_state().coverage()
        # Cluster 1 (server 2) down: BS1 leads nowhere.
        space = StrategySpace(
            network, coverage, np.array([True, True, False])
        )
        for i in (2, 3):
            ks, _ = space.pairs(i)
            assert set(ks.tolist()) == {0}


class TestCostAndFrequencies:
    def test_offline_servers_draw_no_power(self) -> None:
        network = make_tiny_network()
        freqs = np.full(3, 3.6)
        full = energy_cost(network, freqs, 1.0)
        masked = energy_cost(
            network, freqs, 1.0, available=np.array([True, False, True])
        )
        expected = full - network.servers[1].energy_model.power(3.6)
        assert masked == pytest.approx(expected)

    def test_p2b_parks_offline_servers(self) -> None:
        network = make_tiny_network()
        state = state_with_availability(np.array([True, False, True]))
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 0, 2, 2])
        )
        freqs = solve_p2b(
            network, state, assignment, queue_backlog=0.0, v=10.0
        )
        assert freqs[1] == pytest.approx(network.servers[1].freq_min)
        assert freqs[0] == pytest.approx(network.servers[0].freq_max)


class TestControllerUnderOutages:
    def test_step_avoids_offline_servers(self) -> None:
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        state = state_with_availability(np.array([True, False, True]))
        record = controller.step(state)
        assert 1 not in record.assignment.server_of.tolist()
        validate_decision(network, state, record.decision())

    def test_space_cache_distinguishes_availability(self) -> None:
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        s_full = controller.strategy_space(make_tiny_state())
        s_masked = controller.strategy_space(
            state_with_availability(np.array([True, False, True]))
        )
        assert s_full is not s_masked


class TestMarkovOutages:
    def test_no_outages_model(self) -> None:
        network = make_tiny_network()
        mask = NoOutages().availability(0, network, np.random.default_rng(0))
        assert mask.all()

    def test_stationary_unavailability(self) -> None:
        network = make_tiny_network()
        model = MarkovOutages(
            mtbf_slots=20.0,
            mttr_slots=5.0,
            min_up_fraction=0.0001,
            min_up_per_cluster=0,
        )
        rng = np.random.default_rng(0)
        ups = np.array(
            [model.availability(t, network, rng) for t in range(5_000)]
        )
        # Stationary availability = mtbf / (mtbf + mttr) = 0.8.
        assert float(ups.mean()) == pytest.approx(0.8, abs=0.05)

    def test_min_up_fraction_guard(self) -> None:
        network = make_tiny_network()
        # Catastrophic failure rates, but the guard holds 50% up.
        model = MarkovOutages(
            mtbf_slots=1.01, mttr_slots=1e9, min_up_fraction=0.5
        )
        rng = np.random.default_rng(1)
        for t in range(200):
            mask = model.availability(t, network, rng)
            assert int(mask.sum()) >= 2  # ceil(0.5 * 3)

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            MarkovOutages(mtbf_slots=0.0)
        with pytest.raises(ConfigurationError):
            MarkovOutages(min_up_fraction=0.0)
        with pytest.raises(ConfigurationError):
            MarkovOutages(min_up_per_cluster=-1)

    def test_per_cluster_guard(self) -> None:
        network = make_tiny_network()  # clusters {0,1} and {2}
        model = MarkovOutages(
            mtbf_slots=1.01, mttr_slots=1e9,
            min_up_fraction=0.0001, min_up_per_cluster=1,
        )
        rng = np.random.default_rng(3)
        for t in range(100):
            mask = model.availability(t, network, rng)
            assert mask[:2].any()  # cluster 0 never fully dark
            assert mask[2]         # cluster 1 has a single server

    def test_reset(self) -> None:
        network = make_tiny_network()
        model = MarkovOutages(mtbf_slots=1.01, mttr_slots=1e9)
        rng = np.random.default_rng(2)
        for t in range(50):
            model.availability(t, network, rng)
        model.reset()
        # After reset the first availability call starts all-up before
        # applying one slot of failures; with fresh rng nothing fails.
        mask = model.availability(0, network, np.random.default_rng(1000))
        assert mask.sum() >= 2


class TestEndToEndWithFaults:
    def test_simulation_with_outages(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=81,
            config=repro.ScenarioConfig(num_devices=10),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
            faults=MarkovOutages(mtbf_slots=10.0, mttr_slots=3.0),
        )
        states = list(scenario.fresh_states(40))
        masks = np.array([s.available_servers for s in states])
        assert masks.shape == (40, 4)
        assert not masks.all()  # some outage happened over 40 slots
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=1,
        )
        result = repro.run_simulation(
            controller, iter(states), budget=scenario.budget
        )
        assert np.all(np.isfinite(result.latency))

    def test_fresh_states_reset_fault_state(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=82,
            config=repro.ScenarioConfig(num_devices=8),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
            faults=MarkovOutages(mtbf_slots=5.0, mttr_slots=5.0),
        )
        first = [s.available_servers.copy() for s in scenario.fresh_states(20)]
        second = [s.available_servers.copy() for s in scenario.fresh_states(20)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
