"""Tests for fault injection: outage models and the composable framework."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.drift_penalty import energy_cost
from repro.core.p2b import solve_p2b
from repro.core.state import Assignment, SlotState, validate_decision
from repro.exceptions import ConfigurationError, ValidationError
from repro.network.connectivity import StrategySpace
from repro.sim.faults import (
    BaseStationOutages,
    ChannelStaleness,
    ChaosSchedule,
    FaultPlan,
    FronthaulDegradation,
    MarkovOutages,
    NoOutages,
    PriceFeedDropouts,
    ScriptedIncident,
    ServerOutages,
)

from conftest import make_tiny_network, make_tiny_state


def state_with_availability(mask) -> SlotState:
    base = make_tiny_state()
    return SlotState(
        t=base.t,
        cycles=base.cycles,
        bits=base.bits,
        spectral_efficiency=base.spectral_efficiency,
        price=base.price,
        available_servers=mask,
    )


class TestStateMask:
    def test_all_down_rejected(self) -> None:
        with pytest.raises(ValidationError):
            state_with_availability(np.zeros(3, dtype=bool))

    def test_validate_decision_rejects_offline_selection(self) -> None:
        network = make_tiny_network()
        state = state_with_availability(np.array([True, False, True]))
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]),
            server_of=np.array([0, 1, 2, 2]),  # server 1 is offline
        )
        from repro.core.allocation import optimal_allocation

        allocation = optimal_allocation(network, state, assignment)
        with pytest.raises(ValidationError, match="offline"):
            validate_decision(
                network,
                state,
                repro.Decision(
                    assignment=assignment,
                    allocation=allocation,
                    frequencies=np.full(3, 2.0),
                ),
            )


class TestStrategySpaceFiltering:
    def test_offline_servers_excluded(self) -> None:
        network = make_tiny_network()
        coverage = make_tiny_state().coverage()
        space = StrategySpace(
            network, coverage, np.array([True, False, True])
        )
        for i in range(4):
            _, ns = space.pairs(i)
            assert 1 not in ns.tolist()

    def test_cluster_outage_makes_small_cell_only_devices_reroute(self) -> None:
        network = make_tiny_network()
        coverage = make_tiny_state().coverage()
        # Cluster 1 (server 2) down: BS1 leads nowhere.
        space = StrategySpace(
            network, coverage, np.array([True, True, False])
        )
        for i in (2, 3):
            ks, _ = space.pairs(i)
            assert set(ks.tolist()) == {0}


class TestCostAndFrequencies:
    def test_offline_servers_draw_no_power(self) -> None:
        network = make_tiny_network()
        freqs = np.full(3, 3.6)
        full = energy_cost(network, freqs, 1.0)
        masked = energy_cost(
            network, freqs, 1.0, available=np.array([True, False, True])
        )
        expected = full - network.servers[1].energy_model.power(3.6)
        assert masked == pytest.approx(expected)

    def test_p2b_parks_offline_servers(self) -> None:
        network = make_tiny_network()
        state = state_with_availability(np.array([True, False, True]))
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 0, 2, 2])
        )
        freqs = solve_p2b(
            network, state, assignment, queue_backlog=0.0, v=10.0
        )
        assert freqs[1] == pytest.approx(network.servers[1].freq_min)
        assert freqs[0] == pytest.approx(network.servers[0].freq_max)


class TestControllerUnderOutages:
    def test_step_avoids_offline_servers(self) -> None:
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        state = state_with_availability(np.array([True, False, True]))
        record = controller.step(state)
        assert 1 not in record.assignment.server_of.tolist()
        validate_decision(network, state, record.decision())

    def test_space_cache_distinguishes_availability(self) -> None:
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        s_full = controller.strategy_space(make_tiny_state())
        s_masked = controller.strategy_space(
            state_with_availability(np.array([True, False, True]))
        )
        assert s_full is not s_masked


class TestMarkovOutages:
    def test_no_outages_model(self) -> None:
        network = make_tiny_network()
        mask = NoOutages().availability(0, network, np.random.default_rng(0))
        assert mask.all()

    def test_stationary_unavailability(self) -> None:
        network = make_tiny_network()
        model = MarkovOutages(
            mtbf_slots=20.0,
            mttr_slots=5.0,
            min_up_fraction=0.0001,
            min_up_per_cluster=0,
        )
        rng = np.random.default_rng(0)
        ups = np.array(
            [model.availability(t, network, rng) for t in range(5_000)]
        )
        # Stationary availability = mtbf / (mtbf + mttr) = 0.8.
        assert float(ups.mean()) == pytest.approx(0.8, abs=0.05)

    def test_min_up_fraction_guard(self) -> None:
        network = make_tiny_network()
        # Catastrophic failure rates, but the guard holds 50% up.
        model = MarkovOutages(
            mtbf_slots=1.01, mttr_slots=1e9, min_up_fraction=0.5
        )
        rng = np.random.default_rng(1)
        for t in range(200):
            mask = model.availability(t, network, rng)
            assert int(mask.sum()) >= 2  # ceil(0.5 * 3)

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            MarkovOutages(mtbf_slots=0.0)
        with pytest.raises(ConfigurationError):
            MarkovOutages(min_up_fraction=0.0)
        with pytest.raises(ConfigurationError):
            MarkovOutages(min_up_per_cluster=-1)

    def test_per_cluster_guard(self) -> None:
        network = make_tiny_network()  # clusters {0,1} and {2}
        model = MarkovOutages(
            mtbf_slots=1.01, mttr_slots=1e9,
            min_up_fraction=0.0001, min_up_per_cluster=1,
        )
        rng = np.random.default_rng(3)
        for t in range(100):
            mask = model.availability(t, network, rng)
            assert mask[:2].any()  # cluster 0 never fully dark
            assert mask[2]         # cluster 1 has a single server

    def test_reset(self) -> None:
        network = make_tiny_network()
        model = MarkovOutages(mtbf_slots=1.01, mttr_slots=1e9)
        rng = np.random.default_rng(2)
        for t in range(50):
            model.availability(t, network, rng)
        model.reset()
        # After reset the first availability call starts all-up before
        # applying one slot of failures; with fresh rng nothing fails.
        mask = model.availability(0, network, np.random.default_rng(1000))
        assert mask.sum() >= 2

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize(
        "mtbf,mttr", [(1.01, 1e9), (2.0, 50.0), (1.5, 1.5), (1e9, 1.01)]
    )
    def test_guards_hold_under_any_failure_regime(
        self, seed: int, mtbf: float, mttr: float
    ) -> None:
        """Property: whatever the chain parameters and rng draws, every
        emitted mask respects both guards on every slot."""
        network = make_tiny_network()
        model = MarkovOutages(
            mtbf_slots=mtbf, mttr_slots=mttr,
            min_up_fraction=0.5, min_up_per_cluster=1,
        )
        rng = np.random.default_rng(seed)
        min_up = int(np.ceil(0.5 * network.num_servers))
        for t in range(300):
            mask = model.availability(t, network, rng)
            assert int(mask.sum()) >= min_up
            for cluster in network.clusters:
                assert mask[list(cluster.servers)].any()

    def test_forced_repair_tie_break_is_deterministic(self) -> None:
        """Two identical models fed identical draws revive the same
        servers: the longest-down-first ordering is stable, never
        quicksort tie order."""
        network = make_tiny_network()
        masks = []
        for _ in range(2):
            model = MarkovOutages(
                mtbf_slots=1.01, mttr_slots=1e9, min_up_fraction=0.66
            )
            rng = np.random.default_rng(7)
            masks.append(
                np.array([model.availability(t, network, rng) for t in range(100)])
            )
        np.testing.assert_array_equal(masks[0], masks[1])
        # All three servers fail at once on some slot; with equal
        # downtimes the stable sort revives the lowest indices first.
        model = MarkovOutages(
            mtbf_slots=1.01, mttr_slots=1e9,
            min_up_fraction=0.66, min_up_per_cluster=0,
        )

        class AllFail:
            def random(self, n: int):
                return np.zeros(n)

        mask = model.availability(0, network, AllFail())
        assert mask.tolist() == [True, True, False]


class TestStateFaultComponents:
    def test_base_station_outages_zero_coverage_but_never_strand(self) -> None:
        network = make_tiny_network()
        fault = BaseStationOutages(mtbf_slots=1.01, mttr_slots=1e9)
        rng = np.random.default_rng(0)
        for t in range(40):
            state, _ = fault.apply(make_tiny_state(t=t), network, rng)
            coverage = state.spectral_efficiency > 0.0
            # Every device that had coverage keeps at least one BS.
            assert coverage.any(axis=1).all()

    def test_fronthaul_degradation_scales_but_never_zeroes(self) -> None:
        network = make_tiny_network()
        fault = FronthaulDegradation(
            mtbf_slots=1.01, mttr_slots=1e9, factor=0.25
        )
        rng = np.random.default_rng(1)
        state, events = fault.apply(make_tiny_state(), network, rng)
        assert state.fronthaul_se is not None
        assert (state.fronthaul_se > 0.0).all()
        ratio = state.fronthaul_se / network.fronthaul_se
        assert set(np.round(ratio, 12)) <= {0.25, 1.0}
        assert any(e["fault"] == "fronthaul_degraded" for e in events)
        with pytest.raises(ConfigurationError):
            FronthaulDegradation(factor=0.0)

    def test_price_dropouts_serve_stale_prices_and_report_age(self) -> None:
        network = make_tiny_network()
        fault = PriceFeedDropouts(mtbf_slots=1.01, mttr_slots=1e9)
        rng = np.random.default_rng(2)
        first, _ = fault.apply(make_tiny_state(t=0, price=0.5), network, rng)
        assert first.price == 0.5  # first slot is always fresh
        stale_events = []
        for t in range(1, 6):
            state, events = fault.apply(
                make_tiny_state(t=t, price=0.5 + t), network, rng
            )
            assert state.price == 0.5  # frozen at the last fresh value
            stale_events += events
        assert stale_events[0]["phase"] == "onset"
        # A recovering feed reports how long the controller was blind.
        fault._chain.force_up(np.array([0]))
        fault._chain.fail_prob = 0.0
        state, events = fault.apply(make_tiny_state(t=6, price=9.9), network, rng)
        assert state.price == 9.9
        assert events == [
            {"fault": "price_feed", "phase": "clear", "t": 6, "stale_slots": 5}
        ]

    def test_channel_staleness_serves_previous_csi(self) -> None:
        network = make_tiny_network()
        fault = ChannelStaleness(prob=1.0)
        rng = np.random.default_rng(3)
        a = make_tiny_state(t=0)
        fault.apply(a, network, rng)
        b = make_tiny_state(t=1)
        b = SlotState(
            t=1, cycles=b.cycles, bits=b.bits,
            spectral_efficiency=b.spectral_efficiency * 2.0, price=b.price,
        )
        out, events = fault.apply(b, network, rng)
        np.testing.assert_array_equal(
            out.spectral_efficiency, a.spectral_efficiency
        )
        assert events[0]["fault"] == "channel_stale"
        with pytest.raises(ConfigurationError):
            ChannelStaleness(prob=1.5)

    def test_server_outages_adapter_emits_transitions(self) -> None:
        network = make_tiny_network()
        fault = ServerOutages(
            MarkovOutages(mtbf_slots=1.01, mttr_slots=1e9,
                          min_up_fraction=0.0001, min_up_per_cluster=1)
        )
        rng = np.random.default_rng(4)
        kinds = set()
        for t in range(30):
            state, events = fault.apply(make_tiny_state(t=t), network, rng)
            assert state.available_servers is None or state.available_servers.any()
            kinds |= {(e["fault"], e["phase"]) for e in events}
        assert ("server_outage", "onset") in kinds


class TestScriptedIncidents:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            ScriptedIncident(at=-1, duration=2, kind="price_freeze")
        with pytest.raises(ConfigurationError):
            ScriptedIncident(at=0, duration=2, kind="reboot_the_moon")
        with pytest.raises(ConfigurationError):
            ScriptedIncident(at=0, duration=2, kind="server_down")  # no targets
        with pytest.raises(ConfigurationError):
            ChaosSchedule([object()])  # type: ignore[list-item]

    def test_window_and_application(self) -> None:
        network = make_tiny_network()
        plan = FaultPlan(
            schedule=[
                ScriptedIncident(
                    at=2, duration=2, kind="server_down", targets=(1,)
                )
            ]
        )
        rng = np.random.default_rng(0)
        down_slots = []
        for t in range(6):
            state, _ = plan.apply(make_tiny_state(t=t), network, rng)
            mask = state.available_servers
            down_slots.append(mask is not None and not mask[1])
        assert down_slots == [False, False, True, True, False, False]

    def test_bs_down_incident_never_strands_devices(self) -> None:
        network = make_tiny_network()
        plan = FaultPlan(
            schedule=[
                ScriptedIncident(
                    at=0, duration=1, kind="bs_down", targets=(0, 1)
                )
            ]
        )
        state, _ = plan.apply(
            make_tiny_state(), network, np.random.default_rng(0)
        )
        assert (state.spectral_efficiency > 0.0).any(axis=1).all()


class TestFaultPlan:
    def _full_plan(self) -> FaultPlan:
        return FaultPlan(
            faults=(
                ServerOutages(MarkovOutages(mtbf_slots=10.0, mttr_slots=3.0)),
                BaseStationOutages(mtbf_slots=12.0, mttr_slots=3.0),
                FronthaulDegradation(mtbf_slots=8.0, mttr_slots=4.0, factor=0.4),
                PriceFeedDropouts(mtbf_slots=9.0, mttr_slots=3.0),
                ChannelStaleness(prob=0.2),
            ),
            schedule=[
                ScriptedIncident(at=5, duration=3, kind="price_freeze")
            ],
        )

    def test_component_types_are_validated(self) -> None:
        with pytest.raises(ConfigurationError):
            FaultPlan(faults=(NoOutages(),))  # type: ignore[arg-type]

    def test_empty_plan_is_falsy(self) -> None:
        assert not FaultPlan()
        assert FaultPlan(faults=(ChannelStaleness(prob=0.1),))

    def test_scenario_stream_is_deterministic(self) -> None:
        def trajectories():
            scenario = repro.make_paper_scenario(
                seed=91,
                config=repro.ScenarioConfig(num_devices=8),
                fault_plan=self._full_plan(),
            )
            states = list(scenario.fresh_states(30))
            return (
                np.array([s.price for s in states]),
                np.stack([s.spectral_efficiency for s in states]),
            )

        (price_a, h_a), (price_b, h_b) = trajectories(), trajectories()
        np.testing.assert_array_equal(price_a, price_b)
        np.testing.assert_array_equal(h_a, h_b)

    def test_plan_leaves_base_state_stream_untouched(self) -> None:
        """The plan draws from its own stream: the underlying states are
        bit-identical with and without the plan (pre-fault)."""
        bare = repro.make_paper_scenario(
            seed=92, config=repro.ScenarioConfig(num_devices=8)
        )
        faulted = repro.make_paper_scenario(
            seed=92,
            config=repro.ScenarioConfig(num_devices=8),
            fault_plan=FaultPlan(faults=(PriceFeedDropouts(mtbf_slots=3.0),)),
        )
        base_cycles = np.stack([s.cycles for s in bare.fresh_states(20)])
        faulted_cycles = np.stack(
            [s.cycles for s in faulted.fresh_states(20)]
        )
        # Price feed faults only touch prices; demand streams match.
        np.testing.assert_array_equal(base_cycles, faulted_cycles)

    def test_compiled_and_per_slot_paths_agree_under_faults(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=93,
            config=repro.ScenarioConfig(num_devices=8),
            fault_plan=self._full_plan(),
        )
        per_slot = list(scenario.fresh_states(25))
        compiled = list(scenario.fresh_compiled_states(25, chunk=7))
        for a, b in zip(per_slot, compiled):
            np.testing.assert_array_equal(a.price, b.price)
            np.testing.assert_array_equal(
                a.spectral_efficiency, b.spectral_efficiency
            )

    def test_state_dict_round_trip(self) -> None:
        network = make_tiny_network()
        plan = self._full_plan()
        rng = np.random.default_rng(5)
        for t in range(10):
            plan.apply(make_tiny_state(t=t), network, rng)
        saved = plan.state_dict()
        rng_state = rng.bit_generator.state

        twin = self._full_plan()
        twin.load_state_dict(saved)
        twin_rng = np.random.default_rng()
        twin_rng.bit_generator.state = rng_state
        for t in range(10, 20):
            a, _ = plan.apply(make_tiny_state(t=t), network, rng)
            b, _ = twin.apply(make_tiny_state(t=t), network, twin_rng)
            np.testing.assert_array_equal(a.price, b.price)
            np.testing.assert_array_equal(
                a.spectral_efficiency, b.spectral_efficiency
            )


class TestEndToEndWithFaults:
    def test_simulation_with_outages(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=81,
            config=repro.ScenarioConfig(num_devices=10),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
            faults=MarkovOutages(mtbf_slots=10.0, mttr_slots=3.0),
        )
        states = list(scenario.fresh_states(40))
        masks = np.array([s.available_servers for s in states])
        assert masks.shape == (40, 4)
        assert not masks.all()  # some outage happened over 40 slots
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=1,
        )
        result = repro.run_simulation(
            controller, iter(states), budget=scenario.budget
        )
        assert np.all(np.isfinite(result.latency))

    def test_fresh_states_reset_fault_state(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=82,
            config=repro.ScenarioConfig(num_devices=8),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
            faults=MarkovOutages(mtbf_slots=5.0, mttr_slots=5.0),
        )
        first = [s.available_servers.copy() for s in scenario.fresh_states(20)]
        second = [s.available_servers.copy() for s in scenario.fresh_states(20)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
