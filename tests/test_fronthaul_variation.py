"""Tests for time-varying fronthaul spectral efficiency.

The paper treats ``h^F`` as static but claims the algorithm handles
variation; these tests pin that capability end to end: the override is
validated, propagates into the latency algebra, the congestion game,
the exact solver, and full simulations.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.baselines import solve_p2a_exact
from repro.core.congestion_game import OffloadingCongestionGame
from repro.core.latency import (
    effective_fronthaul_se,
    optimal_communication_latency,
)
from repro.core.state import Assignment, SlotState
from repro.exceptions import ValidationError
from repro.network.connectivity import StrategySpace
from repro.radio.fronthaul import ScintillatingFronthaul, StaticFronthaul

from conftest import make_tiny_network, make_tiny_state


def state_with_fronthaul(values) -> SlotState:
    base = make_tiny_state()
    return SlotState(
        t=base.t,
        cycles=base.cycles,
        bits=base.bits,
        spectral_efficiency=base.spectral_efficiency,
        price=base.price,
        fronthaul_se=values,
    )


class TestStateOverride:
    def test_defaults_to_topology_values(self) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        np.testing.assert_array_equal(
            effective_fronthaul_se(network, state), network.fronthaul_se
        )

    def test_override_wins(self) -> None:
        network = make_tiny_network()
        state = state_with_fronthaul(np.array([5.0, 20.0]))
        np.testing.assert_array_equal(
            effective_fronthaul_se(network, state), [5.0, 20.0]
        )

    def test_wrong_shape_rejected(self) -> None:
        with pytest.raises(ValidationError):
            state_with_fronthaul(np.array([5.0]))

    def test_nonpositive_rejected(self) -> None:
        with pytest.raises(ValidationError):
            state_with_fronthaul(np.array([5.0, 0.0]))


class TestPropagation:
    def test_latency_scales_inversely_with_fronthaul_se(self) -> None:
        network = make_tiny_network()
        assignment = Assignment(
            bs_of=np.array([0, 0, 1, 1]), server_of=np.array([0, 1, 2, 2])
        )
        base = make_tiny_state()
        fast = state_with_fronthaul(2.0 * network.fronthaul_se)
        lat_base = optimal_communication_latency(network, base, assignment)
        lat_fast = optimal_communication_latency(network, fast, assignment)
        assert lat_fast < lat_base
        # The access part is untouched; only the fronthaul part halves.
        access_only = state_with_fronthaul(1e12 * network.fronthaul_se)
        access = optimal_communication_latency(network, access_only, assignment)
        fronthaul_base = lat_base - access
        fronthaul_fast = lat_fast - access
        assert fronthaul_fast == pytest.approx(fronthaul_base / 2.0, rel=1e-6)

    def test_game_total_matches_latency_under_override(self) -> None:
        network = make_tiny_network()
        state = state_with_fronthaul(np.array([4.0, 25.0]))
        space = StrategySpace(network, state.coverage())
        game = OffloadingCongestionGame(
            network, state, space, np.full(3, 2.0),
            rng=np.random.default_rng(0),
        )
        from repro.core.latency import optimal_total_latency

        expected = optimal_total_latency(
            network, state, game.assignment(), np.full(3, 2.0)
        )
        assert game.total_cost() == pytest.approx(expected, rel=1e-12)

    def test_exact_solver_sees_override(self) -> None:
        network = make_tiny_network()
        space = StrategySpace(network, make_tiny_state().coverage())
        freqs = np.full(3, 2.0)
        # Make BS1's fronthaul terrible: the optimum should shift
        # devices 2/3 away from BS1 relative to the generous case.
        bad = state_with_fronthaul(np.array([10.0, 0.01]))
        good = state_with_fronthaul(np.array([10.0, 1e4]))
        res_bad = solve_p2a_exact(network, bad, space, freqs)
        res_good = solve_p2a_exact(network, good, space, freqs)
        users_bad = int(np.sum(res_bad.assignment.bs_of == 1))
        users_good = int(np.sum(res_good.assignment.bs_of == 1))
        assert users_bad <= users_good
        assert users_bad == 0  # 0.01 bps/Hz makes BS1 hopeless


class TestFronthaulModels:
    def test_static_model_is_identity(self) -> None:
        model = StaticFronthaul()
        base = np.array([10.0, 12.0])
        out = model.spectral_efficiency(3, base, np.random.default_rng(0))
        np.testing.assert_array_equal(out, base)
        assert out is not base

    def test_scintillating_model_statistics(self) -> None:
        model = ScintillatingFronthaul(rho=0.9, std=0.2, floor_fraction=0.2)
        base = np.array([10.0, 10.0, 10.0, 10.0])
        rng = np.random.default_rng(1)
        draws = np.array(
            [model.spectral_efficiency(t, base, rng) for t in range(500)]
        )
        assert np.all(draws >= 0.2 * 10.0 - 1e-12)
        # Log-normal correction keeps the mean near the base value.
        assert float(draws.mean()) == pytest.approx(10.0, rel=0.1)
        # Temporal correlation: successive draws are close.
        step = np.abs(np.diff(draws, axis=0)).mean()
        spread = draws.std()
        assert step < spread

    def test_scintillating_validation(self) -> None:
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ScintillatingFronthaul(std=-0.1)
        with pytest.raises(ConfigurationError):
            ScintillatingFronthaul(floor_fraction=0.0)


class TestEndToEnd:
    def test_simulation_with_varying_fronthaul(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=71,
            config=repro.ScenarioConfig(num_devices=8),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
            fronthaul=ScintillatingFronthaul(std=0.3),
        )
        states = list(scenario.fresh_states(10))
        values = np.array([s.fronthaul_se for s in states])
        assert values.shape == (10, 3)
        assert not np.allclose(values[0], values[5])
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=1,
        )
        result = repro.run_simulation(
            controller, iter(states), budget=scenario.budget
        )
        assert result.horizon == 10
        assert np.all(np.isfinite(result.latency))
