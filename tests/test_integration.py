"""End-to-end behavioural tests of the DPP theory (Theorems 2-4).

These run the full pipeline (scenario -> controller -> simulation) on a
reduced topology and check the *shapes* the paper proves and plots:
budget satisfaction, the V trade-off, queue stability, and the ordering
of the three DPP variants.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.baselines import mcba_p2a_solver, ropt_p2a_solver
from repro.sim.metrics import converged_tail_mean, cumulative_time_average


def small_scenario(seed: int = 42, num_devices: int = 12) -> repro.Scenario:
    return repro.make_paper_scenario(
        seed=seed,
        config=repro.ScenarioConfig(num_devices=num_devices),
        num_base_stations=3,
        num_clusters=2,
        servers_per_cluster=2,
        num_macro_stations=1,
    )


def run_dpp(
    scenario: repro.Scenario,
    horizon: int,
    *,
    v: float = 100.0,
    budget: float | None = None,
    p2a_solver=None,
    z: int = 2,
) -> repro.SimulationResult:
    budget = scenario.budget if budget is None else budget
    controller = repro.DPPController(
        scenario.network,
        scenario.controller_rng(),
        v=v,
        budget=budget,
        z=z,
        p2a_solver=p2a_solver,
    )
    return repro.run_simulation(
        controller, scenario.fresh_states(horizon), budget=budget
    )


class TestBudgetSatisfaction:
    def test_long_run_cost_meets_budget(self) -> None:
        scenario = small_scenario()
        result = run_dpp(scenario, 300)
        # Theorem 4 (Eq. 29): time-average cost converges under the budget.
        assert result.time_average_cost() <= scenario.budget * 1.05

    def test_running_average_cost_stabilises(self) -> None:
        scenario = small_scenario()
        result = run_dpp(scenario, 300)
        running = cumulative_time_average(result.cost)
        tail = running[150:]
        assert float(tail.max() - tail.min()) < 0.2 * scenario.budget

    def test_queue_is_stable_not_exploding(self) -> None:
        scenario = small_scenario()
        result = run_dpp(scenario, 300)
        first_half = converged_tail_mean(result.backlog[: 150], fraction=0.5)
        second_half = converged_tail_mean(result.backlog[150:], fraction=0.5)
        # Stable queue: the second half is not dramatically above the first.
        assert second_half < max(4.0 * first_half, first_half + 1.0)

    def test_infeasible_budget_queue_grows_linearly(self) -> None:
        scenario = small_scenario()
        # A budget below the minimum achievable cost is infeasible; the
        # queue must then grow without bound (roughly linearly).
        result = run_dpp(scenario, 120, budget=scenario.budget * 1e-3)
        backlog = result.backlog
        assert backlog[-1] > backlog[len(backlog) // 2] > backlog[10]


class TestVTradeoff:
    def test_latency_decreases_and_backlog_increases_with_v(self) -> None:
        scenario = small_scenario()
        horizon = 250
        latencies, backlogs = [], []
        for v in (5.0, 50.0, 500.0):
            result = run_dpp(scenario, horizon, v=v)
            latencies.append(result.time_average_latency())
            backlogs.append(converged_tail_mean(result.backlog, fraction=0.3))
        # Fig. 8's two curves: latency falls with V, backlog rises.
        assert latencies[0] >= latencies[1] >= latencies[2] * 0.99
        assert backlogs[0] <= backlogs[1] <= backlogs[2]

    def test_large_v_latency_approaches_unconstrained(self) -> None:
        scenario = small_scenario()
        constrained = run_dpp(scenario, 150, v=1000.0)
        unconstrained = run_dpp(scenario, 150, budget=1e9)
        assert constrained.time_average_latency() <= (
            1.25 * unconstrained.time_average_latency()
        )


class TestSolverOrdering:
    def test_bdma_dpp_beats_ropt_dpp(self) -> None:
        scenario = small_scenario()
        bdma = run_dpp(scenario, 100)
        ropt = run_dpp(scenario, 100, p2a_solver=ropt_p2a_solver(), z=1)
        assert bdma.time_average_latency() < ropt.time_average_latency()

    def test_bdma_dpp_at_least_matches_mcba_dpp(self) -> None:
        scenario = small_scenario()
        bdma = run_dpp(scenario, 60)
        mcba = run_dpp(
            scenario, 60, p2a_solver=mcba_p2a_solver(iterations=300), z=1
        )
        assert bdma.time_average_latency() <= 1.05 * mcba.time_average_latency()

    def test_all_variants_satisfy_budget(self) -> None:
        scenario = small_scenario()
        for solver, z in ((None, 2), (ropt_p2a_solver(), 1)):
            result = run_dpp(scenario, 250, p2a_solver=solver, z=z)
            assert result.time_average_cost() <= scenario.budget * 1.1


class TestBudgetSweep:
    def test_latency_decreases_with_budget(self) -> None:
        """Fig. 9's main shape: looser budgets buy lower latency."""
        scenario = small_scenario()
        latencies = []
        for fraction in (0.15, 0.5, 0.95):
            budget = scenario.budget / 0.5 * fraction  # rescale the default
            result = run_dpp(scenario, 200, budget=budget)
            latencies.append(result.time_average_latency())
        assert latencies[0] >= latencies[1] >= latencies[2] * 0.99


class TestMobilityIntegration:
    def test_runs_under_mobility_with_changing_coverage(self) -> None:
        from repro.radio.mobility import RandomWaypointMobility

        scenario = repro.make_paper_scenario(
            seed=13,
            config=repro.ScenarioConfig(num_devices=8),
            num_base_stations=3,
            num_clusters=2,
            servers_per_cluster=2,
            num_macro_stations=1,
            mobility=RandomWaypointMobility(
                6_000.0, speed_range=(20.0, 60.0), slot_seconds=60.0
            ),
        )
        result = run_dpp(scenario, 30)
        assert result.horizon == 30
        assert np.all(np.isfinite(result.latency))
