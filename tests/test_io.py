"""Tests for simulation-result serialisation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.io import load_result, save_result, summary_to_dict, summary_to_json
from repro.sim.results import SimulationResult


@pytest.fixture
def result() -> SimulationResult:
    rng = np.random.default_rng(0)
    n = 16
    return SimulationResult(
        latency=rng.uniform(1.0, 2.0, n),
        cost=rng.uniform(0.5, 1.0, n),
        theta=rng.uniform(-0.2, 0.2, n),
        backlog=np.abs(rng.standard_normal(n)),
        solve_seconds=rng.uniform(0.001, 0.01, n),
        price=rng.uniform(20e-6, 60e-6, n),
        budget=0.8,
    )


class TestNpzRoundTrip:
    def test_round_trip_preserves_arrays(self, result, tmp_path) -> None:
        path = save_result(result, tmp_path / "run")
        assert path.suffix == ".npz"
        loaded = load_result(path)
        for field in ("latency", "cost", "theta", "backlog",
                      "solve_seconds", "price"):
            np.testing.assert_allclose(
                getattr(loaded, field), getattr(result, field)
            )
        assert loaded.budget == pytest.approx(0.8)

    def test_round_trip_without_budget(self, result, tmp_path) -> None:
        result.budget = None
        loaded = load_result(save_result(result, tmp_path / "nb.npz"))
        assert loaded.budget is None

    def test_summaries_agree(self, result, tmp_path) -> None:
        loaded = load_result(save_result(result, tmp_path / "s.npz"))
        assert summary_to_dict(loaded.summary()) == pytest.approx(
            summary_to_dict(result.summary())
        )

    def test_missing_field_rejected(self, result, tmp_path) -> None:
        path = tmp_path / "broken.npz"
        np.savez(path, latency=result.latency, format_version=np.array(1))
        with pytest.raises(ValidationError, match="missing fields"):
            load_result(path)

    def test_wrong_version_rejected(self, result, tmp_path) -> None:
        path = save_result(result, tmp_path / "v.npz")
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.array(99)
        np.savez(path, **payload)
        with pytest.raises(ValidationError, match="version"):
            load_result(path)


class TestJsonSummary:
    def test_json_is_valid_and_complete(self, result, tmp_path) -> None:
        path = tmp_path / "summary.json"
        text = summary_to_json(result.summary(), path)
        parsed = json.loads(text)
        assert parsed == json.loads(path.read_text())
        assert parsed["horizon"] == 16
        assert parsed["budget_satisfied"] in (True, False)
        assert set(parsed) == {
            "horizon", "mean_latency", "mean_cost", "mean_backlog",
            "final_backlog", "budget_satisfied", "mean_solve_seconds",
        }
