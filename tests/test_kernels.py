"""Cross-backend parity: jit kernels must be bit-identical to NumPy.

The kernel contract (:mod:`repro.kernels.interface`) promises that
selecting ``backend="jit"`` changes wall-clock, never results.  These
tests enforce it end to end: slot-record streams, trajectory
fingerprints, engine counters, the fused multi-request P2-B solver, and
batched replication must all match the NumPy oracle bit for bit --
including under injected faults and chaos, where the resilience
fallback chain runs on top of the kernels.

Tests that exercise the real jit provider are skipped when neither
numba nor a C compiler is available (``available_backends()["jit"]``
is then ``False`` and ``jit`` would silently alias the oracle).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

import repro
from repro.api import run
from repro.core.p2b import solve_p2b, solve_p2b_many
from repro.core.resilience import ResiliencePolicy, SolverChaos
from repro.core.state import Assignment
from repro.exceptions import ConfigurationError
from repro.kernels import (
    BACKEND_NAMES,
    KernelBackend,
    available_backends,
    get_kernels,
    jit_provider,
)
from repro.obs import Probe
from repro.sim.faults import (
    ChannelStaleness,
    FaultPlan,
    FronthaulDegradation,
    PriceFeedDropouts,
    ScriptedIncident,
)
from repro.sim.replication import ReplicationSpec, run_replications
from repro.solvers.scalar import minimize_convex_scalar_batch

from conftest import make_tiny_network, make_tiny_state

requires_jit = pytest.mark.skipif(
    not available_backends()["jit"],
    reason="backend 'jit' has no real provider (needs numba or a C compiler)",
)

#: Mirror of the pin in benchmarks/bench_slot_pipeline.py: the
#: paper-scale medium preset (seed 7, I=40, 240 slots) must reproduce
#: this trajectory stream on EVERY backend.
MEDIUM_FINGERPRINT = (
    "21d380f5230daf38751e1c04951c28466fde49023e1f3986efd1c8e59a801e04"
)


def fingerprint(result) -> str:
    digest = hashlib.sha256()
    for arr in (
        result.latency,
        result.cost,
        result.theta,
        result.backlog,
        result.price,
    ):
        digest.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return digest.hexdigest()


def assert_records_identical(a, b) -> None:
    """Every SlotRecord field, arrays included, must match bitwise."""
    assert len(a) == len(b)
    for rec_a, rec_b in zip(a, b):
        da = rec_a.to_dict(include_arrays=True)
        db = rec_b.to_dict(include_arrays=True)
        assert set(da) == set(db)
        for key in da:
            if isinstance(da[key], (list, np.ndarray)):
                np.testing.assert_array_equal(da[key], db[key], err_msg=key)
            elif key not in ("solve_seconds", "engine_stats"):
                assert da[key] == db[key], key


class TestRegistry:
    def test_numpy_is_always_available(self) -> None:
        availability = available_backends()
        assert set(availability) == set(BACKEND_NAMES)
        assert availability["numpy"] is True

    def test_unknown_backend_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_kernels("cuda")

    def test_resolved_backends_pass_through_and_cache(self) -> None:
        numpy_kernels = get_kernels("numpy")
        assert get_kernels("numpy") is numpy_kernels
        assert get_kernels(numpy_kernels) is numpy_kernels
        assert get_kernels(None).name == "numpy"
        assert isinstance(numpy_kernels, KernelBackend)

    def test_manifest_surfaces_backend_availability(self) -> None:
        from repro.obs.manifest import RunManifest, config_hash

        manifest = RunManifest(config={"horizon": 4}, seed=1)
        plain = manifest.to_dict()
        assert plain["backends"] == dict(
            available_backends(), jit_provider=jit_provider()
        )
        # Availability is machine-dependent provenance, not configuration:
        # it must not perturb the config hash.
        assert plain["config_hash"] == config_hash({"horizon": 4})

    @requires_jit
    def test_jit_backend_resolves_to_real_provider(self) -> None:
        kernels = get_kernels("jit")
        assert kernels.name == "jit"
        assert kernels.provider in ("numba", "cc")
        assert kernels.golden_quad is not None
        assert kernels.run_dynamics is not None


@requires_jit
class TestGoldenQuadKernel:
    """The native golden-section kernel vs the NumPy batch search."""

    def _lanes(self, size: int, seed: int):
        rng = np.random.default_rng(seed)
        lo = rng.uniform(0.5, 1.5, size)
        hi = lo + rng.uniform(0.0, 2.5, size)
        latency_scale = rng.uniform(0.1, 50.0, size)
        ep = rng.uniform(1e-6, 2e-4, size)
        scale = np.where(rng.random(size) < 0.5, 1.0, rng.uniform(0.5, 2.0, size))
        qa = rng.uniform(0.5, 4.0, size)
        qb = rng.uniform(0.0, 2.0, size)
        qc = rng.uniform(0.0, 10.0, size)
        return lo, hi, latency_scale, ep, scale, qa, qb, qc

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_bit_identical_to_numpy_batch_search(self, seed: int) -> None:
        lo, hi, ls, ep, scale, qa, qb, qc = self._lanes(64, seed)
        tol = 1e-8

        def objective(freq):
            return ls / freq + ep * (scale * (qa * freq * freq + qb * freq + qc))

        reference = minimize_convex_scalar_batch(objective, lo, hi, tol=tol)
        x, evals = get_kernels("jit").golden_quad(
            lo, hi, ls, ep, scale, qa, qb, qc, tol
        )
        np.testing.assert_array_equal(x, reference.x)
        np.testing.assert_array_equal(evals, reference.iterations)

    def test_degenerate_lane_counts_one_eval(self) -> None:
        lo, hi, ls, ep, scale, qa, qb, qc = self._lanes(4, 3)
        hi[2] = lo[2]  # pinned bracket: hi == lo

        def objective(freq):
            return ls / freq + ep * (scale * (qa * freq * freq + qb * freq + qc))

        reference = minimize_convex_scalar_batch(objective, lo, hi, tol=1e-8)
        x, evals = get_kernels("jit").golden_quad(
            lo, hi, ls, ep, scale, qa, qb, qc, 1e-8
        )
        assert evals[2] == 1 == reference.iterations[2]
        assert x[2] == lo[2]
        np.testing.assert_array_equal(x, reference.x)
        np.testing.assert_array_equal(evals, reference.iterations)


@requires_jit
class TestSlotStreamParity:
    """Full pipeline runs must be bit-identical across backends."""

    def _run(self, backend: str, *, seed: int, horizon: int, devices: int,
             **kwargs):
        probe = Probe()
        result = run(
            controller="dpp",
            seed=seed,
            horizon=horizon,
            scenario_config=repro.ScenarioConfig(num_devices=devices),
            engine_backend=backend,
            keep_records=True,
            tracer=probe,
            **kwargs,
        )
        return result, dict(probe.phases.counters)

    def test_small_preset_records_and_counters(self) -> None:
        base, counters_np = self._run("numpy", seed=11, horizon=24, devices=12)
        fast, counters_jit = self._run("jit", seed=11, horizon=24, devices=12)
        assert fingerprint(fast) == fingerprint(base)
        assert_records_identical(base.records, fast.records)
        assert counters_jit == counters_np

    def test_medium_preset_matches_pinned_fingerprint(self) -> None:
        """Paper-scale run hits the committed fingerprint on both backends."""
        for backend in ("numpy", "jit"):
            result = run(
                controller="dpp", seed=7, horizon=240, engine_backend=backend
            )
            assert fingerprint(result) == MEDIUM_FINGERPRINT, backend

    def test_parity_under_faults_and_chaos(self) -> None:
        """Fault-injected states + chaos-driven fallbacks stay identical."""

        def scenario():
            return repro.make_paper_scenario(
                seed=17,
                config=repro.ScenarioConfig(num_devices=10),
                fault_plan=FaultPlan(
                    faults=(
                        FronthaulDegradation(
                            mtbf_slots=8.0, mttr_slots=4.0, factor=0.4
                        ),
                        PriceFeedDropouts(mtbf_slots=9.0, mttr_slots=3.0),
                        ChannelStaleness(prob=0.2),
                    ),
                    schedule=[
                        ScriptedIncident(at=5, duration=3, kind="price_freeze")
                    ],
                ),
            )

        def chaos_run(backend: str):
            return run(
                scenario=scenario(),
                controller="dpp",
                horizon=20,
                engine_backend=backend,
                keep_records=True,
                resilience=ResiliencePolicy(
                    chaos=SolverChaos(fail_slots=(2, 7))
                ),
            )

        base = chaos_run("numpy")
        fast = chaos_run("jit")
        assert fingerprint(fast) == fingerprint(base)
        assert_records_identical(base.records, fast.records)


class TestSolveP2bMany:
    def _requests(self, backend: str, tracers: "list[Probe] | None" = None):
        network = make_tiny_network()
        configs = [
            (Assignment(bs_of=np.array([0, 0, 1, 1]),
                        server_of=np.array([0, 1, 2, 2])), 20.0, 50.0),
            (Assignment(bs_of=np.array([0, 0, 1, 1]),
                        server_of=np.array([0, 0, 2, 2])), 5.0, 10.0),
            (Assignment(bs_of=np.array([0, 1, 1, 0]),
                        server_of=np.array([1, 2, 2, 0])), 300.0, 25.0),
        ]
        return [
            dict(
                network=network,
                state=make_tiny_state(),
                assignment=assignment,
                queue_backlog=q,
                v=v,
                backend=backend,
                tracer=tracers[i] if tracers else None,
            )
            for i, (assignment, q, v) in enumerate(configs)
        ]

    @pytest.mark.parametrize(
        "backend",
        ("numpy", pytest.param("jit", marks=requires_jit)),
    )
    def test_fused_solve_matches_solo(self, backend: str) -> None:
        fused_tracers = [Probe() for _ in range(3)]
        solo_tracers = [Probe() for _ in range(3)]
        fused = solve_p2b_many(self._requests(backend, fused_tracers))
        solo = [
            solve_p2b(**request)
            for request in self._requests(backend, solo_tracers)
        ]
        assert len(fused) == 3
        for got, want in zip(fused, solo):
            np.testing.assert_array_equal(got, want)
        # Counters land on each request's own tracer, exactly as solo.
        for fused_probe, solo_probe in zip(fused_tracers, solo_tracers):
            assert dict(fused_probe.phases.counters) == dict(
                solo_probe.phases.counters
            )

    def test_empty_request_list(self) -> None:
        assert solve_p2b_many([]) == []

    @requires_jit
    def test_bracket_hints_fall_back_to_solo_path(self) -> None:
        requests = self._requests("jit")
        hint = solve_p2b(**{k: v for k, v in requests[0].items() if k != "tracer"})
        requests[0]["bracket_hint"] = hint
        solo = [solve_p2b(**request) for request in self._requests("jit")]
        solo[0] = solve_p2b(
            **{k: v for k, v in self._requests("jit")[0].items()},
            bracket_hint=hint,
        )
        for got, want in zip(solve_p2b_many(requests), solo):
            np.testing.assert_array_equal(got, want)


class TestBatchedReplication:
    def _spec(self, **overrides) -> ReplicationSpec:
        fields = dict(num_devices=8, horizon=6)
        fields.update(overrides)
        return ReplicationSpec(**fields)

    def _outcome_tuples(self, report):
        # mean_solve_seconds is wall-clock, so it legitimately differs
        # between lockstep and solo execution; everything else is
        # arithmetic and must match bitwise.
        return [
            (o.seed, o.mean_latency, o.mean_cost, o.mean_backlog, o.budget)
            for o in report.outcomes
        ]

    def test_spec_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            self._spec(batch_seeds=0)
        with pytest.raises(ConfigurationError):
            self._spec(engine_backend="cuda")

    @pytest.mark.parametrize("batch_seeds", (2, 4))
    def test_lockstep_batches_are_bit_identical(self, batch_seeds: int) -> None:
        seeds = [1, 2, 3, 4, 5]
        base = run_replications(self._spec(), seeds)
        batched = run_replications(
            self._spec(batch_seeds=batch_seeds), seeds
        )
        assert batched.failed_seeds == []
        assert self._outcome_tuples(batched) == self._outcome_tuples(base)

    @requires_jit
    def test_jit_batches_match_numpy(self) -> None:
        seeds = [1, 2, 3]
        base = run_replications(self._spec(), seeds)
        batched = run_replications(
            self._spec(batch_seeds=3, engine_backend="jit"), seeds
        )
        assert self._outcome_tuples(batched) == self._outcome_tuples(base)

    def test_failed_lane_is_retried_solo(self) -> None:
        seeds = [1, 2, 3]
        base = run_replications(self._spec(), seeds)
        # flaky_seeds flips run_replications into its resilient mode;
        # the failed lane drops out of the lockstep batch and is retried
        # solo, which is the exact arithmetic of an unbatched run.
        flaky = run_replications(
            self._spec(batch_seeds=3, flaky_seeds=(2,)), seeds, max_retries=2
        )
        assert flaky.failed_seeds == []
        assert self._outcome_tuples(flaky) == self._outcome_tuples(base)
