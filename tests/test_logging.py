"""Tests that the runtime paths emit useful log records."""

from __future__ import annotations

import logging

import numpy as np

import repro

from conftest import make_tiny_network, make_tiny_state


class TestEngineLogging:
    def test_start_and_end_info_records(self, caplog) -> None:
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        states = [make_tiny_state(t=t) for t in range(3)]
        with caplog.at_level(logging.INFO, logger="repro.sim.engine"):
            repro.run_simulation(controller, iter(states), budget=20.0)
        messages = [r.message for r in caplog.records]
        assert any("simulation start" in m for m in messages)
        assert any("simulation done: 3 slots" in m for m in messages)

    def test_per_slot_debug_records(self, caplog) -> None:
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        with caplog.at_level(logging.DEBUG, logger="repro.sim.engine"):
            repro.run_simulation(
                controller, iter([make_tiny_state()]), budget=20.0
            )
        assert any("slot 0:" in r.message for r in caplog.records)

    def test_silent_at_warning_level(self, caplog) -> None:
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        with caplog.at_level(logging.WARNING, logger="repro.sim.engine"):
            repro.run_simulation(
                controller, iter([make_tiny_state()]), budget=20.0
            )
        assert not caplog.records
