"""Coverage for smaller API corners not exercised elsewhere."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.analysis.tables import format_table
from repro.cli import main
from repro.core.budget import demand_weighted_budget
from repro.energy.models import LinearEnergyModel, ScaledEnergyModel


class TestCliCorners:
    def test_simulate_with_mcba_solver(self, capsys) -> None:
        code = main(
            ["simulate", "--devices", "8", "--horizon", "2", "--solver", "mcba"]
        )
        assert code == 0
        assert '"horizon": 2' in capsys.readouterr().out

    def test_simulate_with_warm_start(self, capsys) -> None:
        code = main(
            [
                "simulate", "--devices", "8", "--horizon", "2", "--z", "1",
                "--warm-start", "--budget-fraction", "0.3",
            ]
        )
        assert code == 0

    def test_report_command_with_stub_free_experiment(self, capsys) -> None:
        code = main(["report", "fig3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "## fig3" in out

    def test_report_to_file(self, capsys, tmp_path) -> None:
        path = tmp_path / "r.md"
        code = main(["report", "fig3", "--output", str(path), "--no-verify"])
        assert code == 0
        assert path.exists()
        assert "Fig. 3" in path.read_text()


class TestTableFormatting:
    def test_custom_float_format(self) -> None:
        table = format_table(
            ["x"], [[1.23456789]], float_format="{:.6f}"
        )
        assert "1.234568" in table

    def test_title_optional(self) -> None:
        table = format_table(["a"], [[1]])
        assert table.splitlines()[0].strip() == "a"


class TestScenarioCorners:
    def test_states_with_start_offset(self, small_scenario) -> None:
        states = list(
            small_scenario.generator.states(
                3, small_scenario.state_rng(), start=10
            )
        )
        assert [s.t for s in states] == [10, 11, 12]

    def test_positions_property_is_a_copy(self, small_scenario) -> None:
        positions = small_scenario.generator.positions
        positions[:] = 0.0
        again = small_scenario.generator.positions
        assert not np.allclose(again, 0.0)


class TestEnergyCorners:
    def test_scaled_power_many(self) -> None:
        model = ScaledEnergyModel(
            base=LinearEnergyModel(slope=2.0, intercept=1.0), scale=3.0
        )
        np.testing.assert_allclose(
            model.power_many(np.array([1.0, 2.0])), [9.0, 15.0]
        )

    def test_default_derivative_finite_difference(self) -> None:
        # Exercise the base-class central difference on a model that
        # does not override it.
        from repro.energy.models import PiecewiseLinearEnergyModel

        model = PiecewiseLinearEnergyModel(
            np.array([1.0, 2.0, 3.0]), np.array([10.0, 12.0, 16.0])
        )
        assert model.derivative(1.5) == pytest.approx(2.0, rel=1e-3)


class TestBudgetProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        average=st.floats(0.1, 100.0),
        strength=st.floats(0.0, 5.0),
        seed=st.integers(0, 1_000),
    )
    def test_property_demand_weighting_preserves_average(
        self, average: float, strength: float, seed: int
    ) -> None:
        profile = np.random.default_rng(seed).uniform(0.2, 3.0, size=24)
        schedule = demand_weighted_budget(average, profile, strength=strength)
        assert schedule.average == pytest.approx(average, rel=1e-9)
        values = [schedule.budget_at(t) for t in range(24)]
        assert min(values) > 0.0


class TestDecisionBundle:
    def test_slot_record_decision_roundtrip(self) -> None:
        from conftest import make_tiny_network, make_tiny_state

        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        record = controller.step(make_tiny_state())
        decision = record.decision()
        assert decision.assignment is record.assignment
        assert decision.allocation is record.allocation
        np.testing.assert_array_equal(decision.frequencies, record.frequencies)
