"""Tests for the domain health monitors (repro.obs.monitors)."""

from __future__ import annotations

import pytest

import repro
from repro.obs import (
    AnomalyMonitor,
    BudgetDriftMonitor,
    FeasibilityMonitor,
    GuaranteeMonitor,
    HealthReport,
    Monitor,
    MonitorSuite,
    Probe,
    QueueStabilityMonitor,
    ResilienceMonitor,
    default_monitors,
)
from repro.sim.faults import MarkovOutages


def gauge(name: str, value: float) -> dict:
    return {"kind": "gauge", "name": name, "value": value}


def slot(t: int, **fields: object) -> dict:
    return {"kind": "event", "name": "slot", "data": {"t": t, **fields}}


class TestSuitePlumbing:
    def test_attached_suite_sees_probe_events(self) -> None:
        probe = Probe()
        monitor = FeasibilityMonitor()
        suite = MonitorSuite([monitor]).attach(probe)
        probe.gauge("feas.access_share_max", 2.0)
        assert monitor.alerts and monitor.alerts[0].severity == "critical"
        assert suite.alerts == monitor.alerts

    def test_alert_events_reach_other_sinks_but_never_feed_back(self) -> None:
        seen: list[dict] = []

        class Collect:
            def emit(self, event: dict) -> None:
                seen.append(event)

            def close(self) -> None:
                pass

        probe = Probe()
        suite = MonitorSuite([FeasibilityMonitor()]).attach(probe)
        probe.add_sink(Collect())
        probe.gauge("feas.compute_share_max", 1.5)
        alert_events = [
            e for e in seen if e["kind"] == "event" and e["name"] == "alert"
        ]
        assert len(alert_events) == 1
        assert alert_events[0]["data"]["monitor"] == "feasibility"
        # One alert total: the suite ignored its own re-emission.
        assert len(suite.alerts) == 1

    def test_alerts_anchor_to_the_current_slot(self) -> None:
        probe = Probe()
        suite = MonitorSuite([FeasibilityMonitor()]).attach(probe)
        probe.event("slot", {"t": 4})
        probe.gauge("feas.freq_excess", 0.5)
        assert suite.alerts[0].t == 4

    def test_finish_is_idempotent(self) -> None:
        suite = MonitorSuite([BudgetDriftMonitor(1.0)])
        suite.emit(slot(0, cost=5.0))
        first = suite.finish()
        assert first is suite.finish()
        assert len(first.alerts) == 1  # the critical fired exactly once

    def test_suite_labels_stamp_alert_payloads(self) -> None:
        # Sharded runs attach labels={"cell": c} so per-cell alerts stay
        # attributable after cross-cell folding.
        probe = Probe()
        suite = MonitorSuite(
            [FeasibilityMonitor()], labels={"cell": 3}
        ).attach(probe)
        probe.gauge("feas.access_share_max", 2.0)
        assert suite.alerts[0].data["cell"] == 3
        # Alert-specific fields survive alongside the labels.
        assert "share" in suite.alerts[0].data or len(suite.alerts[0].data) > 1

    def test_alert_payload_fields_win_over_labels(self) -> None:
        suite = MonitorSuite(
            [BudgetDriftMonitor(1.0)], labels={"budget": -1.0, "cell": 0}
        )
        suite.emit(slot(0, cost=5.0))
        report = suite.finish()
        # The monitor's own `budget` datum overrides the label of the
        # same name; the cell label still lands.
        assert report.alerts[0].data["budget"] == 1.0
        assert report.alerts[0].data["cell"] == 0

    def test_unlabelled_suite_payloads_unchanged(self) -> None:
        suite = MonitorSuite([BudgetDriftMonitor(1.0)])
        suite.emit(slot(0, cost=5.0))
        assert "cell" not in suite.finish().alerts[0].data


class TestQueueStabilityMonitor:
    def _feed(self, monitor: Monitor, values: list[float]) -> None:
        for v in values:
            monitor.observe(gauge("queue.backlog", v))

    def test_linear_growth_fires_once(self) -> None:
        monitor = QueueStabilityMonitor(window=4, patience=2)
        self._feed(monitor, [float(i) for i in range(32)])
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].severity == "critical"
        assert "budget" in monitor.alerts[0].message

    def test_decelerating_ramp_is_stable(self) -> None:
        # Geometric approach to an equilibrium: growth halves each window.
        values, level, step = [], 0.0, 8.0
        for _ in range(10):
            for _ in range(4):
                level += step / 4.0
                values.append(level)
            step *= 0.5
        monitor = QueueStabilityMonitor(window=4, patience=2)
        self._feed(monitor, values)
        assert monitor.alerts == []

    def test_flat_queue_is_stable(self) -> None:
        monitor = QueueStabilityMonitor(window=4, patience=2)
        self._feed(monitor, [3.0] * 40)
        assert monitor.alerts == []

    def test_status_reflects_severity(self) -> None:
        monitor = QueueStabilityMonitor(window=4, patience=2)
        self._feed(monitor, [float(i) for i in range(32)])
        assert monitor.finish().status == "critical"


class TestBudgetDriftMonitor:
    def test_sustained_overspend_warns_then_finish_is_critical(self) -> None:
        monitor = BudgetDriftMonitor(1.0, window=4, patience=3)
        for t in range(12):
            monitor.observe(slot(t, cost=2.0))
        severities = [a.severity for a in monitor.alerts]
        assert severities == ["warning"]
        status = monitor.finish()
        assert status.status == "critical"
        assert any(a.severity == "critical" for a in monitor.alerts)

    def test_transient_overspend_is_tolerated(self) -> None:
        # DPP legitimately overspends while the queue fills, then
        # settles below budget; mean ends up under Cbar.
        monitor = BudgetDriftMonitor(1.0, window=4, patience=6)
        costs = [1.5] * 4 + [0.6] * 20
        for t, c in enumerate(costs):
            monitor.observe(slot(t, cost=c))
        assert monitor.finish().status == "ok"

    def test_no_slots_is_ok(self) -> None:
        status = BudgetDriftMonitor(1.0).finish()
        assert status.status == "ok"
        assert "no slots" in status.detail


class TestFeasibilityMonitor:
    @pytest.mark.parametrize(
        "name",
        [
            "feas.access_share_max",
            "feas.fronthaul_share_max",
            "feas.compute_share_max",
        ],
    )
    def test_share_overflow_is_critical(self, name: str) -> None:
        monitor = FeasibilityMonitor()
        monitor.observe(gauge(name, 0.99))
        assert monitor.alerts == []
        monitor.observe(gauge(name, 1.01))
        assert monitor.alerts[0].severity == "critical"

    def test_frequency_excursion_is_critical(self) -> None:
        monitor = FeasibilityMonitor()
        monitor.observe(gauge("feas.freq_excess", 0.0))
        assert monitor.alerts == []
        monitor.observe(gauge("feas.freq_excess", 0.3))
        assert len(monitor.alerts) == 1

    def test_tolerance_absorbs_float_noise(self) -> None:
        monitor = FeasibilityMonitor()
        monitor.observe(gauge("feas.access_share_max", 1.0 + 1e-9))
        assert monitor.alerts == []


class TestGuaranteeMonitor:
    def test_slot_check_fires_on_bound_violation(self) -> None:
        monitor = GuaranteeMonitor()
        # ratio is 2.62 at slack 0: 10 > 2.62 * 1 violates Theorem 2.
        monitor.observe(slot(0, latency=10.0, latency_lower_bound=1.0))
        monitor.observe(slot(1, latency=2.0, latency_lower_bound=1.0))
        assert len(monitor.alerts) == 1
        assert "Theorem 2" in monitor.alerts[0].message

    def test_finish_checks_bdma_bound(self) -> None:
        network = repro.make_paper_scenario(
            seed=3, config=repro.ScenarioConfig(num_devices=8)
        ).network
        good = GuaranteeMonitor(network, reference_latency=1.0)
        good.observe(slot(0, latency=1.5))
        assert good.finish().status == "ok"

        bad = GuaranteeMonitor(network, reference_latency=1e-3)
        bad.observe(slot(0, latency=1.5))
        status = bad.finish()
        assert status.status == "critical"
        assert "Theorem 3" in bad.alerts[0].message


class TestAnomalyMonitor:
    def test_spike_after_warmup_warns(self) -> None:
        monitor = AnomalyMonitor(("slot.latency",), warmup=8, z_threshold=6.0)
        for t in range(20):
            monitor.observe(slot(t, latency=1.0 + 0.01 * (t % 2)))
        assert monitor.alerts == []
        monitor.observe(slot(20, latency=50.0))
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].severity == "warning"

    def test_alert_cap_limits_noise(self) -> None:
        monitor = AnomalyMonitor(
            ("slot.latency",), warmup=4, max_alerts_per_series=2
        )
        for t in range(10):
            monitor.observe(slot(t, latency=1.0))
        for t in range(10, 20):
            monitor.observe(slot(t, latency=1000.0 * t))
        assert len(monitor.alerts) <= 2

    def test_engine_stats_series(self) -> None:
        monitor = AnomalyMonitor(("engine.moves",), warmup=4)
        for t in range(12):
            monitor.observe(slot(t, engine_stats={"moves": 5}))
        monitor.observe(slot(12, engine_stats={"moves": 5000}))
        assert len(monitor.alerts) == 1


def counter(name: str, value: float = 1.0) -> dict:
    return {"kind": "counter", "name": name, "value": value}


class TestResilienceMonitor:
    def test_quiet_run_is_ok(self) -> None:
        monitor = ResilienceMonitor()
        for t in range(8):
            monitor.observe(slot(t))
        status = monitor.finish()
        assert status.status == "ok"
        assert "no degraded-mode activity" in status.detail

    def test_occasional_fallbacks_stay_ok(self) -> None:
        monitor = ResilienceMonitor(fallback_rate_threshold=0.25)
        for t in range(10):
            fields = {"fallback": "greedy"} if t == 3 else {}
            monitor.observe(slot(t, **fields))
        monitor.observe(counter("resilience.fallbacks"))
        status = monitor.finish()
        assert status.status == "ok"
        assert "fallbacks=1" in status.detail
        assert "fallback slots 1/10" in status.detail

    def test_sustained_fallback_rate_warns(self) -> None:
        monitor = ResilienceMonitor(fallback_rate_threshold=0.25)
        for t in range(10):
            fields = {"fallback": "greedy"} if t % 2 else {}
            monitor.observe(slot(t, **fields))
        status = monitor.finish()
        assert status.status == "warning"
        assert any("effectively degraded" in a.message for a in monitor.alerts)

    def test_random_tier_always_warns(self) -> None:
        monitor = ResilienceMonitor()
        monitor.observe(slot(0, fallback="random"))
        monitor.observe(counter("resilience.fallback.random"))
        monitor.finish()
        assert any("random" in a.message for a in monitor.alerts)

    def test_failed_replication_seed_warns_immediately(self) -> None:
        monitor = ResilienceMonitor()
        monitor.observe(
            {
                "kind": "event",
                "name": "replication.seed_failed",
                "data": {"seed": 9, "attempts": 3, "error": "boom"},
            }
        )
        assert len(monitor.alerts) == 1
        assert "seed 9" in monitor.alerts[0].message
        assert monitor.failed_seeds == [9]

    def test_non_resilience_counters_are_ignored(self) -> None:
        monitor = ResilienceMonitor()
        monitor.observe(counter("engine.moves", 50))
        monitor.observe(counter("resilience.quarantined", 2))
        assert monitor.counts == {"resilience.quarantined": 2.0}

    def test_end_to_end_chaos_run_reaches_the_monitor(self) -> None:
        from repro.core.resilience import ResiliencePolicy, SolverChaos

        scenario = repro.make_paper_scenario(seed=29, config=self.CONFIG)
        monitor = ResilienceMonitor(fallback_rate_threshold=0.9)
        probe = Probe()
        MonitorSuite([monitor]).attach(probe)
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=1,
            resilience=ResiliencePolicy(chaos=SolverChaos(fail_slots=(1, 3))),
            tracer=probe,
        )
        repro.run_simulation(
            controller, scenario.fresh_states(6, tracer=probe),
            budget=scenario.budget, tracer=probe,
        )
        assert monitor.fallback_slots == 2
        assert monitor.counts["resilience.fallbacks"] == 2.0
        assert monitor.finish().status == "ok"

    CONFIG = repro.ScenarioConfig(num_devices=8)


class TestHealthReport:
    def _report(self, *, over_budget: bool) -> HealthReport:
        suite = MonitorSuite([BudgetDriftMonitor(1.0), FeasibilityMonitor()])
        cost = 5.0 if over_budget else 0.5
        for t in range(4):
            suite.emit(slot(t, cost=cost))
        return suite.finish()

    def test_clean_report(self) -> None:
        report = self._report(over_budget=False)
        assert report.ok and not report.failing
        assert report.render().startswith("health: OK")

    def test_failing_report(self) -> None:
        report = self._report(over_budget=True)
        assert not report.ok and report.failing
        rendered = report.render()
        assert rendered.startswith("health: FAILING")
        assert "! critical" in rendered

    def test_to_dict_round_trips_to_json(self) -> None:
        import json

        payload = self._report(over_budget=True).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["failing"] is True


class TestEndToEnd:
    CONFIG = repro.ScenarioConfig(num_devices=8)

    def test_default_scenario_is_clean(self) -> None:
        result = repro.api.run(
            controller="dpp", horizon=20, seed=7, z=1,
            scenario_config=self.CONFIG, monitors=True,
        )
        assert result.health is not None
        assert result.health.ok, result.health.render()

    def test_over_budget_run_raises_budget_alert_and_fails(self) -> None:
        scenario = repro.make_paper_scenario(seed=7, config=self.CONFIG)
        # 5% of the default budget sits below the minimum achievable
        # cost, so the time-average constraint is infeasible: the queue
        # diverges and the budget monitor must flag the violation.
        tiny = scenario.budget * 0.05
        result = repro.api.run(
            scenario=scenario, controller="dpp", horizon=24, z=1,
            budget=tiny,
            monitors=[
                BudgetDriftMonitor(tiny, window=4, patience=3),
                QueueStabilityMonitor(window=4, patience=2),
            ],
        )
        health = result.health
        assert health is not None and health.failing
        assert any(a.monitor == "budget" for a in health.alerts)
        assert any(a.monitor == "queue_stability" for a in health.alerts)

    def test_fault_injected_run_stays_feasible(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=11,
            config=self.CONFIG,
            faults=MarkovOutages(mtbf_slots=6.0, mttr_slots=3.0,
                                 min_up_fraction=0.25),
        )
        result = repro.api.run(
            scenario=scenario, controller="dpp", horizon=16, z=1,
            monitors=[FeasibilityMonitor(), BudgetDriftMonitor(scenario.budget)],
        )
        assert result.health is not None
        assert result.health.ok, result.health.render()

    def test_monitors_true_uses_default_set(self) -> None:
        result = repro.api.run(
            controller="dpp", horizon=4, seed=7, z=1,
            scenario_config=self.CONFIG, monitors=True,
        )
        names = {s.name for s in result.health.statuses}
        assert {"queue_stability", "feasibility", "anomaly", "budget",
                "guarantee"} <= names

    def test_default_monitors_composition(self) -> None:
        bare = default_monitors()
        assert {m.name for m in bare} == {
            "queue_stability", "feasibility", "anomaly", "resilience",
            "overload",
        }
        network = repro.make_paper_scenario(
            seed=3, config=self.CONFIG
        ).network
        full = default_monitors(budget=1.0, network=network)
        assert {m.name for m in full} == {
            "queue_stability", "feasibility", "anomaly", "resilience",
            "overload", "budget", "guarantee"
        }
