"""Tests for strategy spaces and the networkx export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InfeasibleError
from repro.network.connectivity import StrategySpace, to_networkx_graph

from conftest import make_tiny_network, make_tiny_state


class TestStrategySpace:
    def test_pairs_respect_coverage_and_fronthaul(self) -> None:
        net = make_tiny_network()
        space = StrategySpace(net, make_tiny_state().coverage())
        # Devices 0, 1: BS0 only -> servers 0, 1.
        for i in (0, 1):
            ks, ns = space.pairs(i)
            assert set(zip(ks.tolist(), ns.tolist())) == {(0, 0), (0, 1)}
        # Devices 2, 3: additionally BS1 -> server 2.
        for i in (2, 3):
            ks, ns = space.pairs(i)
            assert set(zip(ks.tolist(), ns.tolist())) == {
                (0, 0), (0, 1), (1, 2)
            }

    def test_num_strategies_and_contains(self) -> None:
        net = make_tiny_network()
        space = StrategySpace(net, make_tiny_state().coverage())
        assert space.num_strategies(0) == 2
        assert space.num_strategies(2) == 3
        assert space.contains(2, 1, 2)
        assert not space.contains(0, 1, 2)
        assert not space.contains(0, 0, 2)

    def test_empty_strategy_set_raises(self) -> None:
        net = make_tiny_network()
        coverage = make_tiny_state().coverage()
        coverage[0, :] = False
        with pytest.raises(InfeasibleError) as excinfo:
            StrategySpace(net, coverage)
        assert excinfo.value.device == 0

    def test_wrong_shape_raises(self) -> None:
        net = make_tiny_network()
        with pytest.raises(InfeasibleError):
            StrategySpace(net, np.ones((4, 5), dtype=bool))

    def test_random_assignment_feasible(self) -> None:
        net = make_tiny_network()
        space = StrategySpace(net, make_tiny_state().coverage())
        rng = np.random.default_rng(0)
        for _ in range(20):
            bs_of, server_of = space.random_assignment(rng)
            for i in range(net.num_devices):
                assert space.contains(i, int(bs_of[i]), int(server_of[i]))

    def test_random_assignment_covers_all_strategies(self) -> None:
        net = make_tiny_network()
        space = StrategySpace(net, make_tiny_state().coverage())
        rng = np.random.default_rng(1)
        seen = set()
        for _ in range(200):
            bs_of, server_of = space.random_assignment(rng)
            seen.add((int(bs_of[2]), int(server_of[2])))
        assert seen == {(0, 0), (0, 1), (1, 2)}


class TestRepair:
    def test_keeps_feasible_entries(self) -> None:
        net = make_tiny_network()
        space = StrategySpace(net, make_tiny_state().coverage())
        bs_of = np.array([0, 0, 1, 1], dtype=np.int64)
        server_of = np.array([0, 1, 2, 2], dtype=np.int64)
        fixed_bs, fixed_server = space.repair(
            bs_of, server_of, np.random.default_rng(0)
        )
        np.testing.assert_array_equal(fixed_bs, bs_of)
        np.testing.assert_array_equal(fixed_server, server_of)

    def test_replaces_infeasible_entries(self) -> None:
        net = make_tiny_network()
        coverage = make_tiny_state().coverage()
        coverage[2, 1] = False  # device 2 loses BS1
        space = StrategySpace(net, coverage)
        bs_of = np.array([0, 0, 1, 1], dtype=np.int64)
        server_of = np.array([0, 1, 2, 2], dtype=np.int64)
        fixed_bs, fixed_server = space.repair(
            bs_of, server_of, np.random.default_rng(0)
        )
        assert space.contains(2, int(fixed_bs[2]), int(fixed_server[2]))
        assert int(fixed_bs[2]) == 0  # only the macro remains
        # Untouched devices keep their pairs.
        assert int(fixed_bs[3]) == 1 and int(fixed_server[3]) == 2

    def test_inputs_not_mutated(self) -> None:
        net = make_tiny_network()
        coverage = make_tiny_state().coverage()
        coverage[2, 1] = False
        space = StrategySpace(net, coverage)
        bs_of = np.array([0, 0, 1, 1], dtype=np.int64)
        server_of = np.array([0, 1, 2, 2], dtype=np.int64)
        space.repair(bs_of, server_of, np.random.default_rng(0))
        assert int(bs_of[2]) == 1  # original array untouched


class TestGraphExport:
    def test_node_and_edge_kinds(self) -> None:
        net = make_tiny_network()
        graph = to_networkx_graph(net, make_tiny_state().coverage())
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert kinds == {"device", "bs", "cluster", "server"}
        links = {data["link"] for _, _, data in graph.edges(data=True)}
        assert links == {"access", "fronthaul", "hosting"}

    def test_counts(self) -> None:
        net = make_tiny_network()
        graph = to_networkx_graph(net)
        # 4 devices + 2 BS + 2 clusters + 3 servers.
        assert graph.number_of_nodes() == 11
        # 3 hosting + 2 fronthaul edges; no access edges without coverage.
        assert graph.number_of_edges() == 5
