"""Tests for coverage geometry, the scenario builder, and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.models import ScaledEnergyModel
from repro.exceptions import ConfigurationError, InfeasibleError, TopologyError
from repro.network.builder import NetworkBuilder, build_paper_network
from repro.network.coverage import coverage_matrix, distances
from repro.network.topology import FronthaulType
from repro.network.validation import validate_network

from conftest import make_tiny_network


class TestGeometry:
    def test_distances_shape_and_values(self) -> None:
        devices = np.array([[0.0, 0.0], [3.0, 4.0]])
        stations = np.array([[0.0, 0.0]])
        dist = distances(devices, stations)
        np.testing.assert_allclose(dist, [[0.0], [5.0]])

    def test_coverage_boundary_inclusive(self) -> None:
        devices = np.array([[0.0, 0.0], [0.0, 10.0], [0.0, 10.0001]])
        stations = np.array([[0.0, 0.0]])
        cov = coverage_matrix(devices, stations, np.array([10.0]))
        np.testing.assert_array_equal(cov[:, 0], [True, True, False])

    def test_multi_station_overlap(self) -> None:
        devices = np.array([[5.0, 0.0]])
        stations = np.array([[0.0, 0.0], [10.0, 0.0]])
        cov = coverage_matrix(devices, stations, np.array([6.0, 6.0]))
        assert cov.sum() == 2


class TestBuilder:
    def test_paper_defaults(self, rng: np.random.Generator) -> None:
        network, coverage = build_paper_network(rng, num_devices=50)
        assert network.num_base_stations == 6
        assert network.num_clusters == 2
        assert network.num_servers == 16
        assert network.num_devices == 50
        # Paper: half the servers have 64 cores, half 128.
        cores = sorted(s.cores for s in network.servers)
        assert cores == [64] * 8 + [128] * 8
        # Every device covered (macro cells span the arena).
        assert np.all(coverage.any(axis=1))
        validate_network(network, coverage)

    def test_parameter_ranges_respected(self, rng: np.random.Generator) -> None:
        network, _ = build_paper_network(rng, num_devices=20)
        for bs in network.base_stations:
            assert 50e6 <= bs.access_bandwidth <= 100e6
            assert 0.5e9 <= bs.fronthaul_bandwidth <= 1.0e9
            assert bs.fronthaul_spectral_efficiency == 10.0
            assert bs.fronthaul_type is FronthaulType.WIRED
            assert len(bs.connected_clusters) == 1
        for server in network.servers:
            assert server.freq_min == 1.8
            assert server.freq_max == 3.6
            assert isinstance(server.energy_model, ScaledEnergyModel)
        assert np.all(network.suitability >= 0.5)
        assert np.all(network.suitability <= 1.0)

    def test_wireless_fronthaul_fraction(self, rng: np.random.Generator) -> None:
        builder = NetworkBuilder(num_devices=10, wireless_fronthaul_fraction=1.0)
        network, _ = builder.build(rng)
        for bs in network.base_stations:
            assert bs.fronthaul_type is FronthaulType.WIRELESS
            assert len(bs.connected_clusters) == network.num_clusters

    def test_energy_scaling_toggle(self, rng: np.random.Generator) -> None:
        plain = NetworkBuilder(num_devices=5, scale_energy_with_cores=False)
        network, _ = plain.build(rng)
        assert not isinstance(network.servers[0].energy_model, ScaledEnergyModel)

    def test_determinism_under_same_seed(self) -> None:
        a, _ = build_paper_network(np.random.default_rng(5), num_devices=15)
        b, _ = build_paper_network(np.random.default_rng(5), num_devices=15)
        np.testing.assert_allclose(a.suitability, b.suitability)
        assert [s.cores for s in a.servers] == [s.cores for s in b.servers]

    def test_invalid_configs_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            NetworkBuilder(num_devices=0)
        with pytest.raises(ConfigurationError):
            NetworkBuilder(num_macro_stations=0)
        with pytest.raises(ConfigurationError):
            NetworkBuilder(num_base_stations=2, num_macro_stations=3)


class TestValidation:
    def test_tiny_network_valid(self) -> None:
        net = make_tiny_network()
        validate_network(net)

    def test_uncovered_device_detected(self) -> None:
        net = make_tiny_network()
        coverage = np.zeros((4, 2), dtype=bool)
        coverage[:, 0] = True
        coverage[1, :] = False  # device 1 loses all coverage
        with pytest.raises(InfeasibleError) as excinfo:
            validate_network(net, coverage)
        assert excinfo.value.device == 1

    def test_wrong_coverage_shape_rejected(self) -> None:
        net = make_tiny_network()
        with pytest.raises(TopologyError):
            validate_network(net, np.ones((2, 2), dtype=bool))

    def test_energy_convexity_check_runs(self) -> None:
        net = make_tiny_network()
        validate_network(net, check_energy_convexity=True)
