"""Tests for the named topology presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.presets import PRESETS, get_preset
from repro.network.topology import FronthaulType
from repro.network.validation import validate_network


class TestRegistry:
    def test_known_names(self) -> None:
        assert set(PRESETS) == {
            "paper-default", "dense-small-cells", "metro-rings", "edge-boxes",
        }

    def test_unknown_name_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown preset"):
            get_preset("hyperscale")

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_every_preset_builds_a_valid_network(self, name: str) -> None:
        builder = get_preset(name, num_devices=20)
        network, coverage = builder.build(np.random.default_rng(0))
        assert network.num_devices == 20
        validate_network(network, coverage)

    def test_num_devices_default_used_when_omitted(self) -> None:
        builder = get_preset("edge-boxes")
        assert builder.num_devices == 60


class TestPresetShapes:
    def test_paper_default_matches_sec_via(self) -> None:
        builder = get_preset("paper-default")
        network, _ = builder.build(np.random.default_rng(1))
        assert network.num_base_stations == 6
        assert network.num_servers == 16

    def test_dense_small_cells(self) -> None:
        network, _ = get_preset("dense-small-cells", 15).build(
            np.random.default_rng(2)
        )
        assert network.num_base_stations == 12
        radii = sorted(b.coverage_radius for b in network.base_stations)
        assert radii[0] <= 800.0  # small cells are small
        assert radii[-1] > 4_000.0  # the macro umbrella

    def test_metro_rings_full_fronthaul_mesh(self) -> None:
        network, _ = get_preset("metro-rings", 10).build(
            np.random.default_rng(3)
        )
        assert network.num_clusters == 4
        for bs in network.base_stations:
            assert bs.fronthaul_type is FronthaulType.WIRELESS
            assert len(bs.connected_clusters) == 4
        # Every server reachable from every base station.
        for k in range(network.num_base_stations):
            assert network.servers_reachable_from(k).size == network.num_servers

    def test_edge_boxes_low_core(self) -> None:
        network, _ = get_preset("edge-boxes", 10).build(
            np.random.default_rng(4)
        )
        assert all(s.cores == 16 for s in network.servers)
        assert network.num_servers == 6
