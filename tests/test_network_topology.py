"""Tests for the topology entity model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.models import QuadraticEnergyModel
from repro.exceptions import ConfigurationError, TopologyError
from repro.network.topology import (
    BaseStation,
    EdgeServer,
    FronthaulType,
    MECNetwork,
    MobileDevice,
    ServerCluster,
)

from conftest import make_tiny_network

ENERGY = QuadraticEnergyModel(a=1.0, b=0.0, c=1.0)


def make_bs(**overrides) -> BaseStation:
    defaults = dict(
        index=0,
        position=(0.0, 0.0),
        coverage_radius=100.0,
        access_bandwidth=50e6,
        fronthaul_bandwidth=0.5e9,
        fronthaul_spectral_efficiency=10.0,
        fronthaul_type=FronthaulType.WIRED,
        connected_clusters=(0,),
    )
    defaults.update(overrides)
    return BaseStation(**defaults)


class TestBaseStation:
    def test_covers_geometry(self) -> None:
        bs = make_bs()
        assert bs.covers((50.0, 50.0))
        assert bs.covers((100.0, 0.0))
        assert not bs.covers((100.0, 1.0))

    def test_wired_must_connect_single_cluster(self) -> None:
        with pytest.raises(ConfigurationError, match="wired"):
            make_bs(connected_clusters=(0, 1))

    def test_wireless_may_connect_multiple_clusters(self) -> None:
        bs = make_bs(
            fronthaul_type=FronthaulType.WIRELESS, connected_clusters=(0, 1)
        )
        assert bs.connected_clusters == (0, 1)

    def test_no_cluster_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            make_bs(connected_clusters=())

    @pytest.mark.parametrize(
        "field,value",
        [
            ("coverage_radius", 0.0),
            ("access_bandwidth", -1.0),
            ("fronthaul_bandwidth", 0.0),
            ("fronthaul_spectral_efficiency", 0.0),
        ],
    )
    def test_nonpositive_parameters_rejected(self, field: str, value: float) -> None:
        with pytest.raises(ConfigurationError):
            make_bs(**{field: value})


class TestEdgeServer:
    def test_speed_defaults_to_paper_model(self) -> None:
        # Paper Eq. 7: processing speed equals the clock frequency.
        server = EdgeServer(
            index=0, cluster=0, cores=64, freq_min=1.8, freq_max=3.6,
            energy_model=ENERGY,
        )
        assert server.speed(2.0) == pytest.approx(2e9)

    def test_speed_scale_multiplies_clock(self) -> None:
        server = EdgeServer(
            index=0, cluster=0, cores=64, freq_min=1.8, freq_max=3.6,
            energy_model=ENERGY, speed_scale=64.0,
        )
        assert server.speed(2.0) == pytest.approx(64 * 2e9)

    def test_nonpositive_speed_scale_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            EdgeServer(
                index=0, cluster=0, cores=4, freq_min=1.0, freq_max=2.0,
                energy_model=ENERGY, speed_scale=0.0,
            )

    def test_frequency_ratio(self) -> None:
        server = EdgeServer(
            index=0, cluster=0, cores=4, freq_min=1.8, freq_max=3.6,
            energy_model=ENERGY,
        )
        assert server.frequency_ratio == pytest.approx(2.0)

    def test_bad_frequency_range_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            EdgeServer(
                index=0, cluster=0, cores=4, freq_min=3.6, freq_max=1.8,
                energy_model=ENERGY,
            )

    def test_zero_cores_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            EdgeServer(
                index=0, cluster=0, cores=0, freq_min=1.0, freq_max=2.0,
                energy_model=ENERGY,
            )


class TestMECNetwork:
    def test_tiny_network_dimensions(self) -> None:
        net = make_tiny_network()
        assert net.num_base_stations == 2
        assert net.num_clusters == 2
        assert net.num_servers == 3
        assert net.num_devices == 4
        assert "K=2" in repr(net)

    def test_reachability_respects_fronthaul(self) -> None:
        net = make_tiny_network()
        np.testing.assert_array_equal(net.servers_reachable_from(0), [0, 1])
        np.testing.assert_array_equal(net.servers_reachable_from(1), [2])

    def test_speeds_vector(self) -> None:
        net = make_tiny_network()
        speeds = net.speeds(np.array([2.0, 2.0, 3.0]))
        np.testing.assert_allclose(speeds, [2e9, 2e9, 3e9])

    def test_max_frequency_ratio(self) -> None:
        net = make_tiny_network()
        assert net.max_frequency_ratio() == pytest.approx(2.0)

    def test_suitability_shape_enforced(self) -> None:
        net = make_tiny_network()
        with pytest.raises(TopologyError):
            MECNetwork(
                net.base_stations,
                net.clusters,
                net.servers,
                net.devices,
                np.ones((2, 3)),
            )

    def test_suitability_range_enforced(self) -> None:
        net = make_tiny_network()
        bad = np.ones((4, 3))
        bad[0, 0] = 1.5
        with pytest.raises(TopologyError):
            MECNetwork(
                net.base_stations, net.clusters, net.servers, net.devices, bad
            )

    def test_cluster_membership_consistency_enforced(self) -> None:
        net = make_tiny_network()
        # Claim server 2 belongs to cluster 0's list while the server
        # itself says cluster 1.
        bad_clusters = (
            ServerCluster(index=0, servers=(0, 1, 2)),
            ServerCluster(index=1, servers=(2,)),
        )
        with pytest.raises(TopologyError):
            MECNetwork(
                net.base_stations,
                bad_clusters,
                net.servers,
                net.devices,
                net.suitability,
            )

    def test_misordered_indices_rejected(self) -> None:
        net = make_tiny_network()
        shuffled = (net.devices[1], net.devices[0], net.devices[2], net.devices[3])
        with pytest.raises(TopologyError, match="carries index"):
            MECNetwork(
                net.base_stations,
                net.clusters,
                net.servers,
                shuffled,
                net.suitability,
            )

    def test_empty_network_rejected(self) -> None:
        net = make_tiny_network()
        with pytest.raises(TopologyError):
            MECNetwork((), net.clusters, net.servers, net.devices, net.suitability)

    def test_unknown_cluster_reference_rejected(self) -> None:
        net = make_tiny_network()
        bad_bs = (
            net.base_stations[0],
            make_bs(index=1, connected_clusters=(7,)),
        )
        with pytest.raises(TopologyError, match="unknown cluster"):
            MECNetwork(
                bad_bs, net.clusters, net.servers, net.devices, net.suitability
            )

    def test_positions_accessors(self) -> None:
        net = make_tiny_network()
        assert net.device_positions().shape == (4, 2)
        assert net.base_station_positions().shape == (2, 2)

    def test_labels(self) -> None:
        net = make_tiny_network()
        assert net.base_stations[0].label == "macro"
        assert net.servers[0].label == "S0"
        assert net.devices[3].label == "D3"
        assert net.clusters[0].label == "Cluster0"
