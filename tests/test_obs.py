"""Tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import time

import pytest

import repro
from repro.obs import (
    JsonlSink,
    NULL_TRACER,
    PhaseAggregator,
    Probe,
    RunManifest,
    Tracer,
    as_tracer,
    config_hash,
    manifest_path_for,
    read_jsonl,
)
from repro.obs.probe import _NULL_SPAN


class TestNullTracer:
    def test_disabled_and_inert(self) -> None:
        t = Tracer()
        assert not t.enabled
        with t.span("anything"):
            t.counter("c")
            t.gauge("g", 1.0)
            t.event("e", {"x": 1})
        t.close()

    def test_span_is_shared_singleton(self) -> None:
        t = Tracer()
        assert t.span("a") is t.span("b") is _NULL_SPAN

    def test_as_tracer(self) -> None:
        assert as_tracer(None) is NULL_TRACER
        probe = Probe()
        assert as_tracer(probe) is probe


class TestProbeSpans:
    def test_nested_spans_produce_slash_paths(self) -> None:
        probe = Probe()
        with probe.span("slot"):
            with probe.span("bdma"):
                with probe.span("p2a"):
                    pass
            with probe.span("queue"):
                pass
        names = set(probe.phases.spans)
        assert names == {"slot", "slot/bdma", "slot/bdma/p2a", "slot/queue"}

    def test_span_durations_are_positive_and_nested(self) -> None:
        probe = Probe()
        with probe.span("outer"):
            with probe.span("inner"):
                time.sleep(0.002)
        outer = probe.phases.phase_stats("outer")
        inner = probe.phases.phase_stats("outer/inner")
        assert inner["total_seconds"] >= 0.002
        assert outer["total_seconds"] >= inner["total_seconds"]
        assert outer["count"] == inner["count"] == 1

    def test_exception_still_closes_span(self) -> None:
        probe = Probe()
        with pytest.raises(ValueError):
            with probe.span("slot"):
                raise ValueError("boom")
        assert probe.phases.phase_stats("slot")["count"] == 1
        # The stack unwound: a new span is top-level again.
        with probe.span("next"):
            pass
        assert "next" in probe.phases.spans

    def test_counters_accumulate_and_gauges_record(self) -> None:
        probe = Probe()
        probe.counter("moves", 3)
        probe.counter("moves", 2)
        probe.gauge("backlog", 1.5)
        probe.gauge("backlog", 2.5)
        assert probe.phases.counters["moves"] == 5.0
        assert probe.phases.gauges["backlog"] == [1.5, 2.5]


class TestAggregatorMerging:
    def _probe_with_work(self, n: int) -> Probe:
        probe = Probe()
        for _ in range(n):
            with probe.span("slot"):
                pass
        probe.counter("moves", n)
        return probe

    def test_merge_combines_counts(self) -> None:
        a = self._probe_with_work(3).phases
        b = self._probe_with_work(2).phases
        a.merge(b)
        assert a.phase_stats("slot")["count"] == 5
        assert a.counters["moves"] == 5.0

    def test_state_dict_round_trip(self) -> None:
        probe = self._probe_with_work(4)
        probe.gauge("q", 7.0)
        state = probe.phases.state_dict()
        # state_dict must be JSON/pickle-plain for process transport.
        json.dumps(state)
        fresh = PhaseAggregator()
        fresh.merge_state(state)
        assert fresh.phase_stats("slot")["count"] == 4
        assert fresh.counters["moves"] == 4.0
        assert fresh.gauges["q"] == [7.0]

    def test_probe_merge_phase_state_ignores_none(self) -> None:
        probe = self._probe_with_work(1)
        probe.merge_phase_state(None)
        probe.merge_phase_state(self._probe_with_work(2).phases.state_dict())
        assert probe.phases.phase_stats("slot")["count"] == 3

    def test_ordered_merge_restores_gauge_recency(self) -> None:
        # Pooled workers complete in arbitrary order; with order= keys
        # the folded gauge series must come out in logical order no
        # matter the arrival order, so the tail stays "current value".
        import random

        segments = [
            ((epoch, cell), [float(10 * epoch + cell)])
            for epoch in range(4)
            for cell in range(2)
        ]
        expected = [v for _, vals in sorted(segments) for v in vals]
        for trial in range(5):
            shuffled = list(segments)
            random.Random(trial).shuffle(shuffled)
            agg = PhaseAggregator()
            for key, values in shuffled:
                agg.merge_state({"gauges": {"q": values}}, order=key)
            assert agg.gauges["q"] == expected, f"trial {trial}"
            assert agg.gauges["q"][-1] == 31.0  # last epoch, last cell

    def test_ordered_merge_keeps_local_samples_first(self) -> None:
        agg = PhaseAggregator()
        agg.emit({"kind": "gauge", "name": "q", "value": 0.5})
        agg.merge_state({"gauges": {"q": [2.0]}}, order=(1, 0))
        agg.merge_state({"gauges": {"q": [1.0]}}, order=(0, 0))
        assert agg.gauges["q"] == [0.5, 1.0, 2.0]

    def test_unordered_merge_keeps_arrival_order(self) -> None:
        agg = PhaseAggregator()
        agg.merge_state({"gauges": {"q": [2.0]}})
        agg.merge_state({"gauges": {"q": [1.0]}})
        assert agg.gauges["q"] == [2.0, 1.0]

    def test_percentiles_nearest_rank(self) -> None:
        agg = PhaseAggregator()
        for value in (1.0, 2.0, 3.0, 4.0):
            agg.emit({"kind": "span", "name": "p", "seconds": value})
        stats = agg.phase_stats("p")
        assert stats["p50_seconds"] == 2.0
        assert stats["p95_seconds"] == 4.0
        assert stats["total_seconds"] == 10.0

    def test_table_lists_phases_and_counters(self) -> None:
        probe = self._probe_with_work(2)
        table = probe.phases.table()
        assert "slot" in table
        assert "moves" in table
        assert "p95" in table


class TestJsonlSink:
    def test_round_trip(self, tmp_path) -> None:
        path = tmp_path / "trace.jsonl"
        probe = Probe(sinks=(JsonlSink(path),))
        with probe.span("slot"):
            probe.counter("moves", 2)
        probe.event("slot", {"t": 0, "latency": 1.25})
        probe.close()
        events = read_jsonl(path)
        kinds = [e["kind"] for e in events]
        assert kinds.count("span") == 1
        assert kinds.count("counter") == 1
        assert kinds.count("event") == 1
        span = next(e for e in events if e["kind"] == "span")
        assert span["name"] == "slot"
        assert span["seconds"] >= 0.0
        event = next(e for e in events if e["kind"] == "event")
        assert event["data"]["latency"] == 1.25

    def test_context_manager_closes_file(self, tmp_path) -> None:
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"kind": "gauge", "name": "g", "value": 1.0})
            assert not sink._fh.closed
        assert sink._fh.closed
        assert read_jsonl(path) == [{"kind": "gauge", "name": "g", "value": 1.0}]

    def test_flush_every_makes_events_durable_before_close(self, tmp_path) -> None:
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, flush_every=1)
        sink.emit({"kind": "gauge", "name": "g", "value": 1.0})
        # Visible to a concurrent reader without close() -- crash safety.
        assert read_jsonl(path) == [{"kind": "gauge", "name": "g", "value": 1.0}]
        sink.close()

    def test_flush_pushes_buffered_lines_and_is_safe_after_close(
        self, tmp_path
    ) -> None:
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)  # no flush_every: runtime buffering
        sink.emit({"kind": "gauge", "name": "g", "value": 1.0})
        sink.flush()
        # The salvage path's contract: flushed events are durable even
        # though the sink stays open for the retried epoch job.
        assert read_jsonl(path) == [{"kind": "gauge", "name": "g", "value": 1.0}]
        sink.close()
        sink.flush()  # no-op on a closed file, never raises

    def test_probe_flush_reaches_streaming_sinks(self, tmp_path) -> None:
        path = tmp_path / "trace.jsonl"
        probe = Probe(sinks=(JsonlSink(path),))
        probe.gauge("q", 3.0)
        probe.flush()  # PhaseAggregator has no flush; must be skipped
        assert read_jsonl(path) == [{"kind": "gauge", "name": "q", "value": 3.0}]
        probe.close()

    def test_flush_every_validates(self, tmp_path) -> None:
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "t.jsonl", flush_every=0)

    def test_schema_fields_stable(self, tmp_path) -> None:
        path = tmp_path / "trace.jsonl"
        probe = Probe(sinks=(JsonlSink(path),))
        with probe.span("a"):
            pass
        probe.counter("c", 1.0)
        probe.gauge("g", 2.0)
        probe.close()
        by_kind = {e["kind"]: e for e in read_jsonl(path)}
        assert set(by_kind["span"]) == {"kind", "name", "start", "seconds"}
        assert set(by_kind["counter"]) == {"kind", "name", "value"}
        assert set(by_kind["gauge"]) == {"kind", "name", "value"}


class TestManifest:
    def test_config_hash_is_order_insensitive(self) -> None:
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_write_and_fields(self, tmp_path) -> None:
        manifest = RunManifest(config={"horizon": 8}, seed=3)
        path = manifest.finish().write(tmp_path / "run.manifest.json")
        data = json.loads(path.read_text())
        assert data["seed"] == 3
        assert data["config"] == {"horizon": 8}
        assert data["config_hash"] == config_hash({"horizon": 8})
        assert data["package"] == "repro"
        assert data["version"] == repro.__version__
        assert data["wall_clock_seconds"] >= 0.0

    def test_manifest_path_for(self) -> None:
        assert str(manifest_path_for("out/run.jsonl")).endswith(
            "out/run.manifest.json"
        )

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path) -> None:
        manifest = RunManifest(config={}, seed=1)
        path = manifest.finish().write(tmp_path / "run.manifest.json")
        assert path.exists()
        # temp-then-rename: only the final file remains.
        assert [p.name for p in tmp_path.iterdir()] == ["run.manifest.json"]


class TestInstrumentationEndToEnd:
    def test_dpp_run_emits_expected_phases(self) -> None:
        probe = Probe()
        repro.api.run(
            controller="dpp", horizon=3, seed=11, tracer=probe,
            scenario_config=repro.ScenarioConfig(num_devices=8),
        )
        expected = {
            "slot", "slot/state", "slot/bdma", "slot/bdma/p2a",
            "slot/bdma/p2a/cgba", "slot/bdma/p2b", "slot/allocation",
            "slot/queue",
        }
        assert expected <= set(probe.phases.spans)
        assert probe.phases.phase_stats("slot")["count"] == 3
        assert probe.phases.counters["bdma.rounds"] > 0
        assert probe.phases.counters["engine.moves"] >= 0
        assert "p2b.scalar_solves" in probe.phases.counters
        assert probe.phases.gauges["queue.backlog"]

    def test_keep_records_false_still_streams_slot_events(self, tmp_path) -> None:
        path = tmp_path / "trace.jsonl"
        probe = Probe(sinks=(JsonlSink(path),))
        result = repro.api.run(
            controller="dpp", horizon=4, seed=11, tracer=probe,
            keep_records=False,
            scenario_config=repro.ScenarioConfig(num_devices=8),
        )
        probe.close()
        assert result.records == []
        slots = [e for e in read_jsonl(path) if e["kind"] == "event"
                 and e["name"] == "slot"]
        assert [s["data"]["t"] for s in slots] == [0, 1, 2, 3]
        assert slots[0]["data"]["latency"] == pytest.approx(
            float(result.latency[0])
        )
        assert "engine_stats" in slots[0]["data"]

    def test_replication_merges_worker_phases(self) -> None:
        probe = Probe()
        spec = repro.ReplicationSpec(num_devices=8, horizon=3, solver="dpp")
        repro.run_replications(spec, [1, 2], tracer=probe)
        assert probe.phases.phase_stats("slot")["count"] == 6

    def test_null_tracer_overhead_is_negligible(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=5, config=repro.ScenarioConfig(num_devices=20)
        )

        def once(tracer) -> float:
            start = time.perf_counter()
            repro.api.run(
                scenario=scenario, controller="dpp", horizon=50,
                tracer=tracer, rng_label="overhead",
            )
            return time.perf_counter() - start

        once(None)  # warm caches
        base = min(once(None) for _ in range(3))
        noop = min(once(NULL_TRACER) for _ in range(3))
        # <5% regression target, with absolute slack against timer noise.
        assert noop <= base * 1.05 + 0.05
