"""Tests for the overload-protection layer.

Covers the :class:`~repro.core.overload.OverloadPolicy` unit behaviour
(watermark validation, hysteresis, deterministic shed selection), the
shed algebra on slot states, and the controller integration: a run
driven past its budget keeps the virtual-queue backlog bounded, every
shed task is accounted on the :class:`~repro.core.controller.SlotRecord`
and the ``repro_shed_tasks_total`` telemetry counter, the
:class:`~repro.obs.monitors.OverloadMonitor` raises the health alert,
and overloaded sharded runs stay bit-identical across runtimes (the
hysteresis flag rides the controller's ``state_dict``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import sharding
from repro.core.overload import OverloadPolicy, shed_tasks
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry


def overload_scenario(seed: int = 11) -> repro.Scenario:
    """A scenario with a starved budget, so the queue grows fast."""
    return repro.make_paper_scenario(
        seed,
        config=repro.ScenarioConfig(num_devices=24, budget_fraction=0.02),
    )


class TestOverloadPolicy:
    def test_invalid_watermarks_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="high_watermark"):
            OverloadPolicy(high_watermark=0.0)
        with pytest.raises(ConfigurationError, match="low_watermark"):
            OverloadPolicy(high_watermark=1.0, low_watermark=1.0)
        with pytest.raises(ConfigurationError, match="low_watermark"):
            OverloadPolicy(high_watermark=1.0, low_watermark=-0.5)

    def test_invalid_shed_fraction_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="shed_fraction"):
            OverloadPolicy(high_watermark=1.0, shed_fraction=0.0)
        with pytest.raises(ConfigurationError, match="shed_fraction"):
            OverloadPolicy(high_watermark=1.0, shed_fraction=1.5)

    def test_low_watermark_defaults_to_half(self) -> None:
        assert OverloadPolicy(high_watermark=8.0).low_watermark == 4.0

    def test_hysteresis_band(self) -> None:
        policy = OverloadPolicy(high_watermark=10.0, low_watermark=4.0)
        assert not policy.engaged(False, 9.9)
        assert policy.engaged(False, 10.0)
        # Once engaged the controller stays overloaded inside the band
        # and recovers only below the low watermark.
        assert policy.engaged(True, 9.9)
        assert policy.engaged(True, 4.1)
        assert not policy.engaged(True, 4.0)

    def test_select_heaviest_first_ties_by_index(self) -> None:
        policy = OverloadPolicy(high_watermark=1.0, shed_fraction=0.5)
        cycles = np.array([2.0, 5.0, 0.0, 5.0, 1.0])
        # Four active devices -> ceil(0.5 * 4) = 2 shed; the tied
        # heaviest (devices 1 and 3) resolve by index, stably.
        np.testing.assert_array_equal(policy.select(cycles), [1, 3])

    def test_select_ignores_idle_devices(self) -> None:
        policy = OverloadPolicy(high_watermark=1.0, shed_fraction=1.0)
        np.testing.assert_array_equal(
            policy.select(np.array([0.0, 3.0, 0.0])), [1]
        )
        assert policy.select(np.zeros(4)).size == 0

    def test_shed_tasks_zeroes_demand_keeps_coverage(self) -> None:
        scenario = overload_scenario()
        state = next(iter(scenario.fresh_states(1)))
        out = shed_tasks(state, np.array([0, 2]))
        assert out.cycles[0] == 0.0 and out.bits[2] == 0.0
        untouched = np.setdiff1d(np.arange(len(state.cycles)), [0, 2])
        np.testing.assert_array_equal(
            out.cycles[untouched], state.cycles[untouched]
        )
        np.testing.assert_array_equal(out.coverage(), state.coverage())
        # Empty shed is the identity, not a copy.
        assert shed_tasks(state, np.array([], dtype=int)) is state


class TestControllerIntegration:
    POLICY = OverloadPolicy(high_watermark=10.0, shed_fraction=0.5)

    def test_backlog_bounded_and_fully_accounted(self) -> None:
        horizon = 40
        baseline = repro.api.run(
            scenario=overload_scenario(), horizon=horizon
        )
        registry = MetricsRegistry()
        result = repro.api.run(
            scenario=overload_scenario(),
            horizon=horizon,
            overload=self.POLICY,
            keep_records=True,
            metrics_registry=registry,
            monitors=True,
        )
        # The starved baseline queue keeps climbing; admission control
        # caps the overloaded run well below it.
        assert baseline.backlog[-1] > 2 * self.POLICY.high_watermark
        assert result.backlog.max() < baseline.backlog.max()
        # Every shed task is accounted on the slot records and the
        # records agree exactly with the telemetry counter.
        shed_total = sum(len(record.shed) for record in result.records)
        assert shed_total > 0
        assert registry.counter(
            "repro_shed_tasks_total"
        ).value() == float(shed_total)
        assert not np.isnan(
            registry.gauge("repro_overload_state").value()
        )
        # The health report carries the overload warning.
        assert result.health is not None
        overload_status = {
            s.name: s for s in result.health.statuses
        }["overload"]
        assert overload_status.status == "warning"
        assert any(
            alert.monitor == "overload" for alert in result.health.alerts
        )

    def test_clean_run_stays_ok(self) -> None:
        result = repro.api.run(
            horizon=6,
            seed=3,
            overload=OverloadPolicy(high_watermark=1e9),
            keep_records=True,
            monitors=True,
        )
        assert all(not record.shed for record in result.records)
        status = {s.name: s for s in result.health.statuses}["overload"]
        assert status.status == "ok"
        assert status.detail == "no overload activity"

    def test_records_omit_shed_when_empty(self) -> None:
        result = repro.api.run(horizon=2, seed=3, keep_records=True)
        assert "shed" not in result.records[0].to_dict()

    def test_state_dict_round_trips_hysteresis(self) -> None:
        scenario = overload_scenario()
        controller = repro.api.make_controller(
            "dpp", scenario, overload=self.POLICY
        )
        controller._overloaded = True
        state = controller.state_dict()
        assert state["overload_active"] is True
        fresh = repro.api.make_controller(
            "dpp", overload_scenario(), overload=self.POLICY
        )
        fresh.load_state_dict(state)
        assert fresh._overloaded is True
        # Old snapshots without the key load as not-overloaded.
        state.pop("overload_active")
        fresh.load_state_dict(state)
        assert fresh._overloaded is False


class TestShardedOverload:
    def test_sequential_and_resident_match_under_overload(self) -> None:
        policy = OverloadPolicy(high_watermark=10.0, shed_fraction=0.5)

        def run(**extra):
            return sharding.run_sharded(
                overload_scenario(),
                horizon=6,
                cells=2,
                epoch=2,
                overload=policy,
                **extra,
            )

        sequential = run()
        resident = run(processes=2, runtime="resident")
        for left, right in zip(
            (
                sequential.merged.latency,
                sequential.merged.cost,
                sequential.merged.backlog,
            ),
            (
                resident.merged.latency,
                resident.merged.cost,
                resident.merged.backlog,
            ),
        ):
            np.testing.assert_array_equal(left, right)

    def test_overload_policy_survives_run_config(self) -> None:
        policy = OverloadPolicy(high_watermark=5.0)
        config = repro.RunConfig(
            controller="dpp", horizon=4, controller_params={"overload": policy}
        )
        out = config.to_dict()["controller_params"]["overload"]
        assert out == {
            "high_watermark": 5.0,
            "low_watermark": 2.5,
            "shed_fraction": 0.25,
        }
