"""Property-based invariants over randomly generated scenarios.

Hypothesis drives random topologies, states, and parameters through the
full per-slot pipeline, checking the invariants that every component
must preserve regardless of the draw:

* decisions are always feasible (constraints (1)-(6));
* Lemma-1 shares saturate their resources exactly;
* the congestion game's total equals the closed-form latency;
* CGBA terminates at a Nash profile;
* the DPP record's accounting identities hold.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.core.allocation import optimal_allocation
from repro.core.congestion_game import OffloadingCongestionGame
from repro.core.latency import optimal_total_latency, total_latency
from repro.core.state import validate_decision
from repro.network.connectivity import StrategySpace

SCENARIO_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def random_setup(seed: int, num_devices: int):
    scenario = repro.make_paper_scenario(
        seed=seed,
        config=repro.ScenarioConfig(num_devices=num_devices),
        num_base_stations=4,
        num_clusters=2,
        servers_per_cluster=3,
        num_macro_stations=2,
    )
    state = next(iter(scenario.fresh_states(1)))
    space = StrategySpace(scenario.network, state.coverage())
    return scenario, state, space


class TestPipelineInvariants:
    @SCENARIO_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        num_devices=st.integers(3, 15),
        v=st.floats(1.0, 500.0),
        backlog=st.floats(0.0, 100.0),
    )
    def test_dpp_step_is_feasible_and_consistent(
        self, seed: int, num_devices: int, v: float, backlog: float
    ) -> None:
        scenario, state, _ = random_setup(seed, num_devices)
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng("prop"),
            v=v,
            budget=scenario.budget,
            z=1,
            initial_backlog=backlog,
        )
        record = controller.step(state)
        validate_decision(scenario.network, state, record.decision())
        assert record.theta == pytest.approx(record.cost - scenario.budget)
        assert record.backlog_after == pytest.approx(
            max(record.backlog_before + record.theta, 0.0)
        )
        recomputed = optimal_total_latency(
            scenario.network, state, record.assignment, record.frequencies
        )
        assert record.latency == pytest.approx(recomputed, rel=1e-9)

    @SCENARIO_SETTINGS
    @given(seed=st.integers(0, 10_000), num_devices=st.integers(3, 15))
    def test_lemma1_shares_saturate_resources(
        self, seed: int, num_devices: int
    ) -> None:
        scenario, state, space = random_setup(seed, num_devices)
        bs_of, server_of = space.random_assignment(
            np.random.default_rng(seed + 1)
        )
        assignment = repro.Assignment(bs_of=bs_of, server_of=server_of)
        allocation = optimal_allocation(scenario.network, state, assignment)
        for n in range(scenario.network.num_servers):
            members = assignment.devices_on_server(n)
            if members.size:
                assert allocation.compute_share[members].sum() == (
                    pytest.approx(1.0)
                )
        for k in range(scenario.network.num_base_stations):
            members = assignment.devices_on_bs(k)
            if members.size:
                assert allocation.access_share[members].sum() == (
                    pytest.approx(1.0)
                )

    @SCENARIO_SETTINGS
    @given(seed=st.integers(0, 10_000), num_devices=st.integers(3, 15))
    def test_closed_form_equals_general_formula(
        self, seed: int, num_devices: int
    ) -> None:
        scenario, state, space = random_setup(seed, num_devices)
        rng = np.random.default_rng(seed + 2)
        bs_of, server_of = space.random_assignment(rng)
        assignment = repro.Assignment(bs_of=bs_of, server_of=server_of)
        frequencies = rng.uniform(
            scenario.network.freq_min, scenario.network.freq_max
        )
        allocation = optimal_allocation(scenario.network, state, assignment)
        general = total_latency(
            scenario.network, state, assignment, allocation, frequencies
        )
        closed = optimal_total_latency(
            scenario.network, state, assignment, frequencies
        )
        assert general == pytest.approx(closed, rel=1e-9)

    @SCENARIO_SETTINGS
    @given(seed=st.integers(0, 10_000), num_devices=st.integers(3, 12))
    def test_game_total_equals_latency_everywhere(
        self, seed: int, num_devices: int
    ) -> None:
        scenario, state, space = random_setup(seed, num_devices)
        rng = np.random.default_rng(seed + 3)
        frequencies = rng.uniform(
            scenario.network.freq_min, scenario.network.freq_max
        )
        game = OffloadingCongestionGame(
            scenario.network, state, space, frequencies, rng=rng
        )
        expected = optimal_total_latency(
            scenario.network, state, game.assignment(), frequencies
        )
        assert game.total_cost() == pytest.approx(expected, rel=1e-9)

    @SCENARIO_SETTINGS
    @given(seed=st.integers(0, 10_000), num_devices=st.integers(3, 12))
    def test_cgba_reaches_nash_equilibrium(
        self, seed: int, num_devices: int
    ) -> None:
        scenario, state, space = random_setup(seed, num_devices)
        rng = np.random.default_rng(seed + 4)
        frequencies = scenario.network.freq_max.copy()
        result = repro.solve_p2a_cgba(
            scenario.network, state, space, frequencies, rng
        )
        assert result.converged
        game = OffloadingCongestionGame(
            scenario.network, state, space, frequencies,
            initial=result.assignment,
        )
        for player in range(game.num_players):
            _, best = game.best_response(player)
            assert game.player_cost(player) <= best + 1e-9

    @SCENARIO_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        num_devices=st.integers(3, 12),
        q=st.floats(0.0, 1_000.0),
        v=st.floats(1.0, 500.0),
    )
    def test_p2b_frequencies_within_bounds_and_stationary(
        self, seed: int, num_devices: int, q: float, v: float
    ) -> None:
        scenario, state, space = random_setup(seed, num_devices)
        rng = np.random.default_rng(seed + 5)
        bs_of, server_of = space.random_assignment(rng)
        assignment = repro.Assignment(bs_of=bs_of, server_of=server_of)
        freqs = repro.solve_p2b(
            scenario.network, state, assignment, queue_backlog=q, v=v
        )
        network = scenario.network
        assert np.all(freqs >= network.freq_min - 1e-9)
        assert np.all(freqs <= network.freq_max + 1e-9)
        # Small perturbations within bounds never improve the objective.
        from repro.core.drift_penalty import dpp_objective

        base = dpp_objective(
            network, state, assignment, freqs,
            queue_backlog=q, v=v, budget=scenario.budget,
        )
        for delta in (-0.01, 0.01):
            perturbed = np.clip(
                freqs + delta, network.freq_min, network.freq_max
            )
            value = dpp_objective(
                network, state, assignment, perturbed,
                queue_backlog=q, v=v, budget=scenario.budget,
            )
            assert base <= value + 1e-6 * max(1.0, abs(value))
