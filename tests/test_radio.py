"""Tests for channel models, fading, and mobility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.radio.channel import DistanceChannelModel, UniformChannelModel
from repro.radio.fading import Ar1Process, CorrelatedChannelModel
from repro.radio.mobility import RandomWaypointMobility, StaticMobility


@pytest.fixture
def geometry() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    devices = np.array([[0.0, 0.0], [100.0, 0.0], [2_000.0, 0.0]])
    stations = np.array([[0.0, 0.0], [1_000.0, 0.0]])
    coverage = np.array([[True, True], [True, False], [False, True]])
    return devices, stations, coverage


class TestUniformChannel:
    def test_draws_inside_range_and_zero_off_coverage(
        self, geometry, rng: np.random.Generator
    ) -> None:
        devices, stations, coverage = geometry
        model = UniformChannelModel(se_min=15.0, se_max=50.0)
        h = model.spectral_efficiency(0, devices, stations, coverage, rng)
        assert h.shape == coverage.shape
        assert np.all(h[coverage] >= 15.0)
        assert np.all(h[coverage] <= 50.0)
        assert np.all(h[~coverage] == 0.0)

    def test_iid_over_time(self, geometry, rng: np.random.Generator) -> None:
        devices, stations, coverage = geometry
        model = UniformChannelModel()
        h0 = model.spectral_efficiency(0, devices, stations, coverage, rng)
        h1 = model.spectral_efficiency(1, devices, stations, coverage, rng)
        assert not np.allclose(h0[coverage], h1[coverage])

    def test_invalid_range_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            UniformChannelModel(se_min=50.0, se_max=15.0)


class TestDistanceChannel:
    def test_nearer_is_better_on_average(self, rng: np.random.Generator) -> None:
        devices = np.array([[100.0, 0.0], [2_500.0, 0.0]])
        stations = np.array([[0.0, 0.0]])
        coverage = np.ones((2, 1), dtype=bool)
        model = DistanceChannelModel(shadowing_std=0.0)
        h = model.spectral_efficiency(0, devices, stations, coverage, rng)
        assert h[0, 0] > h[1, 0]

    def test_clipped_into_range(self, rng: np.random.Generator) -> None:
        devices = np.array([[1.0, 0.0], [50_000.0, 0.0]])
        stations = np.array([[0.0, 0.0]])
        coverage = np.ones((2, 1), dtype=bool)
        model = DistanceChannelModel(shadowing_std=10.0)
        h = model.spectral_efficiency(0, devices, stations, coverage, rng)
        assert np.all(h >= model.se_min)
        assert np.all(h <= model.se_max)

    def test_bad_anchors_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DistanceChannelModel(d_ref=100.0, d_edge=50.0)


class TestAr1:
    def test_stationary_moments(self) -> None:
        rng = np.random.default_rng(0)
        process = Ar1Process((2_000,), rho=0.8, rng=rng)
        states = [process.step(rng) for _ in range(50)]
        flat = np.concatenate(states)
        assert abs(float(flat.mean())) < 0.05
        assert float(flat.std()) == pytest.approx(1.0, abs=0.05)

    def test_temporal_correlation_matches_rho(self) -> None:
        rng = np.random.default_rng(1)
        process = Ar1Process((5_000,), rho=0.9, rng=rng)
        x0 = process.state
        x1 = process.step(rng)
        corr = float(np.corrcoef(x0, x1)[0, 1])
        assert corr == pytest.approx(0.9, abs=0.05)

    def test_invalid_rho_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            Ar1Process((1,), rho=1.0, rng=np.random.default_rng(0))


class TestCorrelatedChannel:
    def test_consecutive_slots_are_correlated(self, geometry) -> None:
        devices, stations, _ = geometry
        coverage = np.ones((3, 2), dtype=bool)
        rng = np.random.default_rng(2)
        # Constant base field isolates the AR(1) perturbation.
        base = UniformChannelModel(se_min=30.0, se_max=30.0)
        model = CorrelatedChannelModel(base, rho=0.95, std=5.0)
        h_prev = model.spectral_efficiency(0, devices, stations, coverage, rng)
        diffs, steps = [], []
        for t in range(1, 200):
            h = model.spectral_efficiency(t, devices, stations, coverage, rng)
            diffs.append(np.abs(h - h_prev).mean())
            steps.append(h.copy())
            h_prev = h
        # AR(1) with rho=0.95: per-step moves are much smaller than the
        # stationary spread.
        spread = np.std([s.mean() for s in steps])
        assert np.mean(diffs) < 5.0
        assert np.all(np.concatenate(steps) >= model.floor)

    def test_respects_coverage(self, geometry) -> None:
        devices, stations, coverage = geometry
        model = CorrelatedChannelModel(UniformChannelModel(), rho=0.5)
        h = model.spectral_efficiency(
            0, devices, stations, coverage, np.random.default_rng(3)
        )
        assert np.all(h[~coverage] == 0.0)


class TestMobility:
    def test_static_is_identity(self, rng: np.random.Generator) -> None:
        positions = rng.uniform(0, 100, size=(5, 2))
        new = StaticMobility().step(positions, rng)
        np.testing.assert_array_equal(new, positions)
        assert new is not positions  # defensive copy

    def test_waypoint_moves_devices(self) -> None:
        rng = np.random.default_rng(4)
        mobility = RandomWaypointMobility(1_000.0, speed_range=(5.0, 10.0),
                                          slot_seconds=10.0)
        positions = rng.uniform(0, 1_000.0, size=(10, 2))
        new = mobility.step(positions, rng)
        moved = np.linalg.norm(new - positions, axis=1)
        assert np.all(moved > 0.0)
        assert np.all(moved <= 10.0 * 10.0 + 1e-9)

    def test_waypoint_stays_in_area(self) -> None:
        rng = np.random.default_rng(5)
        mobility = RandomWaypointMobility(500.0, speed_range=(50.0, 80.0),
                                          slot_seconds=10.0)
        positions = rng.uniform(0, 500.0, size=(20, 2))
        for _ in range(100):
            positions = mobility.step(positions, rng)
            assert np.all(positions >= 0.0)
            assert np.all(positions <= 500.0)

    def test_invalid_parameters_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            RandomWaypointMobility(0.0)
        with pytest.raises(ConfigurationError):
            RandomWaypointMobility(100.0, speed_range=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            RandomWaypointMobility(100.0, slot_seconds=0.0)
