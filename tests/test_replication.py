"""Tests for repeated-seed replication."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.obs import Probe
from repro.sim import replication as replication_mod
from repro.sim.replication import (
    ReplicationSpec,
    execute_replication,
    run_replications,
)

SMALL_NETWORK = (
    ("num_base_stations", 3),
    ("num_clusters", 2),
    ("servers_per_cluster", 2),
    ("num_macro_stations", 1),
)


def small_spec(**overrides) -> ReplicationSpec:
    fields = dict(
        num_devices=8,
        horizon=6,
        z=1,
        network_overrides=SMALL_NETWORK,
    )
    fields.update(overrides)
    return ReplicationSpec(**fields)


class TestSpec:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            ReplicationSpec(solver="gurobi")
        with pytest.raises(ConfigurationError):
            ReplicationSpec(horizon=0)

    def test_spec_is_hashable_and_picklable(self) -> None:
        import pickle

        spec = small_spec()
        assert hash(spec)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestExecution:
    def test_single_replication_outcome(self) -> None:
        outcome = execute_replication((small_spec(), 3))
        assert outcome.seed == 3
        assert outcome.mean_latency > 0.0
        assert outcome.mean_cost > 0.0
        assert outcome.budget > 0.0

    def test_deterministic_per_seed(self) -> None:
        a = execute_replication((small_spec(), 5))
        b = execute_replication((small_spec(), 5))
        assert a.mean_latency == pytest.approx(b.mean_latency)
        assert a.mean_cost == pytest.approx(b.mean_cost)

    def test_solvers_run(self) -> None:
        for solver in ("bdma", "ropt", "mcba"):
            outcome = execute_replication((small_spec(solver=solver), 1))
            assert np.isfinite(outcome.mean_latency)


class TestAggregation:
    def test_sequential_report(self) -> None:
        report = run_replications(small_spec(), seeds=(0, 1, 2))
        assert len(report.outcomes) == 3
        assert report.latency is not None
        assert report.latency.num_runs == 3
        assert report.latency.ci_low <= report.latency.mean <= report.latency.ci_high
        assert 0.0 <= report.budget_satisfaction_rate() <= 1.0

    def test_parallel_matches_sequential(self) -> None:
        seeds = (0, 1)
        sequential = run_replications(small_spec(), seeds=seeds)
        parallel = run_replications(small_spec(), seeds=seeds, processes=2)
        for a, b in zip(sequential.outcomes, parallel.outcomes):
            assert a.seed == b.seed
            assert a.mean_latency == pytest.approx(b.mean_latency)

    def test_empty_seeds_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            run_replications(small_spec(), seeds=())

    def test_bdma_beats_ropt_across_seeds(self) -> None:
        seeds = (0, 1, 2)
        bdma = run_replications(small_spec(horizon=12), seeds=seeds)
        ropt = run_replications(
            small_spec(horizon=12, solver="ropt"), seeds=seeds
        )
        assert bdma.latency is not None and ropt.latency is not None
        assert bdma.latency.mean < ropt.latency.mean


class ListSink:
    def __init__(self) -> None:
        self.items: list[dict] = []

    def emit(self, event: dict) -> None:
        self.items.append(event)

    def close(self) -> None:
        pass

    def events(self, name: str) -> list[dict]:
        return [
            e["data"]
            for e in self.items
            if e["kind"] == "event" and e["name"] == name
        ]

    def counter(self, name: str) -> float:
        return sum(
            e["value"]
            for e in self.items
            if e["kind"] == "counter" and e["name"] == name
        )


class TestFailureSalvage:
    def test_crashing_seed_lands_in_failed_seeds(self) -> None:
        sink = ListSink()
        report = run_replications(
            small_spec(fail_seeds=(2,)),
            seeds=(1, 2, 3),
            max_retries=1,
            retry_backoff_seconds=0.0,
            tracer=Probe([sink]),
        )
        assert report.failed_seeds == [2]
        assert [o.seed for o in report.outcomes] == [1, 3]
        assert report.latency is not None and report.latency.num_runs == 2
        # One retry was attempted and recorded before giving up.
        retries = sink.events("replication.retry")
        assert [r["seed"] for r in retries] == [2]
        failed = sink.events("replication.seed_failed")
        assert failed == [
            {"seed": 2, "attempts": 2, "error": failed[0]["error"]}
        ]
        assert "injected failure" in failed[0]["error"]
        assert sink.counter("resilience.retries") == 1
        assert sink.counter("resilience.seed_failures") == 1

    def test_parallel_pool_salvages_around_a_crashing_seed(self) -> None:
        report = run_replications(
            small_spec(fail_seeds=(2,)),
            seeds=(1, 2, 3),
            processes=2,
            max_retries=0,
            retry_backoff_seconds=0.0,
        )
        assert report.failed_seeds == [2]
        assert [o.seed for o in report.outcomes] == [1, 3]

    def test_flaky_seed_succeeds_on_retry(self) -> None:
        replication_mod._FLAKY_ATTEMPTS.clear()
        sink = ListSink()
        report = run_replications(
            small_spec(flaky_seeds=(5,)),
            seeds=(4, 5),
            max_retries=2,
            retry_backoff_seconds=0.0,
            tracer=Probe([sink]),
        )
        assert report.failed_seeds == []
        assert [o.seed for o in report.outcomes] == [4, 5]
        assert [r["attempt"] for r in sink.events("replication.retry")] == [1]
        assert sink.events("replication.seed_failed") == []

    def test_all_seeds_failing_yields_an_empty_report(self) -> None:
        report = run_replications(
            small_spec(fail_seeds=(1, 2)),
            seeds=(1, 2),
            max_retries=0,
            retry_backoff_seconds=0.0,
        )
        assert report.outcomes == []
        assert report.failed_seeds == [1, 2]
        assert report.budget == 0.0
        assert report.latency is None and report.cost is None
        assert report.budget_satisfaction_rate() == 0.0
        with pytest.raises(ConfigurationError, match="all 2 seeds failed"):
            report.summary()

    def test_summary_counts_failed_runs(self) -> None:
        report = run_replications(
            small_spec(fail_seeds=(9,)),
            seeds=(1, 9),
            max_retries=0,
            retry_backoff_seconds=0.0,
        )
        summary = report.summary()
        assert summary.runs == 1
        assert summary.failed_runs == 1
        assert summary.to_dict()["failed_runs"] == 1

    def test_retry_knob_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            run_replications(small_spec(), seeds=(0,), max_retries=-1)
        with pytest.raises(ConfigurationError):
            run_replications(small_spec(), seeds=(0,), timeout_seconds=0.0)

    def test_resilient_path_matches_plain_outcomes(self) -> None:
        seeds = (0, 1)
        plain = run_replications(small_spec(), seeds=seeds)
        resilient = run_replications(
            small_spec(), seeds=seeds, max_retries=1,
            retry_backoff_seconds=0.0,
        )
        for a, b in zip(plain.outcomes, resilient.outcomes):
            assert a.seed == b.seed
            assert a.mean_latency == pytest.approx(b.mean_latency)
