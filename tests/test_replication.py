"""Tests for repeated-seed replication."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.replication import (
    ReplicationSpec,
    execute_replication,
    run_replications,
)

SMALL_NETWORK = (
    ("num_base_stations", 3),
    ("num_clusters", 2),
    ("servers_per_cluster", 2),
    ("num_macro_stations", 1),
)


def small_spec(**overrides) -> ReplicationSpec:
    fields = dict(
        num_devices=8,
        horizon=6,
        z=1,
        network_overrides=SMALL_NETWORK,
    )
    fields.update(overrides)
    return ReplicationSpec(**fields)


class TestSpec:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            ReplicationSpec(solver="gurobi")
        with pytest.raises(ConfigurationError):
            ReplicationSpec(horizon=0)

    def test_spec_is_hashable_and_picklable(self) -> None:
        import pickle

        spec = small_spec()
        assert hash(spec)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestExecution:
    def test_single_replication_outcome(self) -> None:
        outcome = execute_replication((small_spec(), 3))
        assert outcome.seed == 3
        assert outcome.mean_latency > 0.0
        assert outcome.mean_cost > 0.0
        assert outcome.budget > 0.0

    def test_deterministic_per_seed(self) -> None:
        a = execute_replication((small_spec(), 5))
        b = execute_replication((small_spec(), 5))
        assert a.mean_latency == pytest.approx(b.mean_latency)
        assert a.mean_cost == pytest.approx(b.mean_cost)

    def test_solvers_run(self) -> None:
        for solver in ("bdma", "ropt", "mcba"):
            outcome = execute_replication((small_spec(solver=solver), 1))
            assert np.isfinite(outcome.mean_latency)


class TestAggregation:
    def test_sequential_report(self) -> None:
        report = run_replications(small_spec(), seeds=(0, 1, 2))
        assert len(report.outcomes) == 3
        assert report.latency is not None
        assert report.latency.num_runs == 3
        assert report.latency.ci_low <= report.latency.mean <= report.latency.ci_high
        assert 0.0 <= report.budget_satisfaction_rate() <= 1.0

    def test_parallel_matches_sequential(self) -> None:
        seeds = (0, 1)
        sequential = run_replications(small_spec(), seeds=seeds)
        parallel = run_replications(small_spec(), seeds=seeds, processes=2)
        for a, b in zip(sequential.outcomes, parallel.outcomes):
            assert a.seed == b.seed
            assert a.mean_latency == pytest.approx(b.mean_latency)

    def test_empty_seeds_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            run_replications(small_spec(), seeds=())

    def test_bdma_beats_ropt_across_seeds(self) -> None:
        seeds = (0, 1, 2)
        bdma = run_replications(small_spec(horizon=12), seeds=seeds)
        ropt = run_replications(
            small_spec(horizon=12, solver="ropt"), seeds=seeds
        )
        assert bdma.latency is not None and ropt.latency is not None
        assert bdma.latency.mean < ropt.latency.mean
