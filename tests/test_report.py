"""Tests for the consolidated report generator."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.report import QUICK_SET, generate_report


@dataclass
class _StubResult:
    text: str = "stub table"
    fail: bool = False

    def table(self) -> str:
        return self.text

    def verify(self) -> None:
        if self.fail:
            raise AssertionError("stub claim violated")


def stub_runners(fail_one: bool = False):
    return {
        "good": lambda: _StubResult("GOOD TABLE"),
        "bad": lambda: _StubResult("BAD TABLE", fail=fail_one),
    }


class TestGenerateReport:
    def test_renders_tables_and_verdicts(self) -> None:
        text = generate_report(["good", "bad"], runners=stub_runners())
        assert "## good" in text
        assert "GOOD TABLE" in text
        assert text.count("all qualitative claims hold") == 2

    def test_verification_failure_is_reported_not_raised(self) -> None:
        text = generate_report(
            ["good", "bad"], runners=stub_runners(fail_one=True)
        )
        assert "**FAILED**: stub claim violated" in text
        assert "all qualitative claims hold" in text  # the good one

    def test_no_verify_mode(self) -> None:
        text = generate_report(
            ["bad"], runners=stub_runners(fail_one=True), verify=False
        )
        assert "FAILED" not in text

    def test_unknown_name_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            generate_report(["nope"], runners=stub_runners())

    def test_writes_to_file(self, tmp_path) -> None:
        path = tmp_path / "report.md"
        text = generate_report(["good"], runners=stub_runners(), path=path)
        assert path.read_text() == text

    def test_quick_set_is_registered(self) -> None:
        from repro.experiments import RUNNERS

        assert set(QUICK_SET) <= set(RUNNERS)

    def test_real_quick_experiment_end_to_end(self) -> None:
        # One genuinely cheap experiment through the real registry.
        text = generate_report(["fig3"])
        assert "Fig. 3" in text
        assert "all qualitative claims hold" in text
