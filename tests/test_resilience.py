"""Tests for degraded-mode execution (repro.core.resilience)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro
from repro.core.resilience import (
    ResiliencePolicy,
    SolverChaos,
    fallback_decision,
    find_infeasible_devices,
    quarantine_state,
)
from repro.core.state import SlotState, validate_decision
from repro.exceptions import ConfigurationError, InfeasibleError, SolverError
from repro.network.connectivity import StrategySpace
from repro.obs import Probe

from conftest import make_tiny_network, make_tiny_state


class ListSink:
    def __init__(self) -> None:
        self.items: list[dict] = []

    def emit(self, event: dict) -> None:
        self.items.append(event)

    def close(self) -> None:
        pass

    def counters(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.items:
            if e["kind"] == "counter":
                out[e["name"]] = out.get(e["name"], 0.0) + e["value"]
        return out

    def events(self, name: str) -> list[dict]:
        return [
            e["data"]
            for e in self.items
            if e["kind"] == "event" and e["name"] == name
        ]


def stranded_state() -> SlotState:
    """Tiny state where device 2 covers nothing: empty strategy set."""
    base = make_tiny_state()
    h = base.spectral_efficiency.copy()
    h[2, :] = 0.0
    return dataclasses.replace(base, spectral_efficiency=h)


class TestSolverChaos:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            SolverChaos(failure_rate=1.5)
        with pytest.raises(ConfigurationError):
            SolverChaos(failure_rate=-0.1)

    def test_fail_slots_always_trip(self) -> None:
        chaos = SolverChaos(fail_slots=(3, 7))
        assert chaos.trips(3) and chaos.trips(7)
        assert not chaos.trips(4)

    def test_rate_is_deterministic_and_roughly_calibrated(self) -> None:
        chaos = SolverChaos(failure_rate=0.25, seed=5)
        first = [chaos.trips(t) for t in range(400)]
        second = [chaos.trips(t) for t in range(400)]
        assert first == second  # stateless in t: checkpoint-safe
        assert 0.15 < np.mean(first) < 0.35

    def test_zero_rate_never_trips(self) -> None:
        chaos = SolverChaos(failure_rate=0.0)
        assert not any(chaos.trips(t) for t in range(100))


class TestPolicyValidation:
    def test_bad_deadline_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(deadline_seconds=0.0)

    def test_bad_iteration_cap_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_engine_iter=0)


class TestQuarantine:
    def test_find_infeasible_devices(self) -> None:
        network = make_tiny_network()
        assert find_infeasible_devices(network, make_tiny_state()).size == 0
        bad = find_infeasible_devices(network, stranded_state())
        assert bad.tolist() == [2]

    def test_quarantine_state_is_feasible_and_inert(self) -> None:
        network = make_tiny_network()
        state = quarantine_state(
            network, stranded_state(), np.array([2], dtype=np.int64)
        )
        assert state.cycles[2] == 0.0 and state.bits[2] == 0.0
        # The placeholder link keeps the strategy space constructible.
        space = StrategySpace(network, state.coverage(), state.available_servers)
        ks, _ = space.pairs(2)
        assert ks.size > 0

    def test_noop_without_quarantined_devices(self) -> None:
        state = make_tiny_state()
        out = quarantine_state(
            make_tiny_network(), state, np.array([], dtype=np.int64)
        )
        assert out is state

    def test_controller_quarantines_and_records(self) -> None:
        network = make_tiny_network()
        sink = ListSink()
        probe = Probe([sink])
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1,
            resilience=ResiliencePolicy(), tracer=probe,
        )
        record = controller.step(stranded_state())
        assert record.quarantined == (2,)
        assert sink.events("quarantine") == [{"t": 0, "devices": [2]}]
        assert sink.counters()["resilience.quarantined"] == 1
        # Healthy slots carry the default empty tuple.
        healthy = controller.step(make_tiny_state(t=1))
        assert healthy.quarantined == ()

    def test_without_policy_stays_fail_fast(self) -> None:
        controller = repro.DPPController(
            make_tiny_network(), np.random.default_rng(0),
            v=50.0, budget=20.0, z=1,
        )
        with pytest.raises(InfeasibleError):
            controller.step(stranded_state())


class TestFallbackChain:
    def _space(self, network, state) -> StrategySpace:
        return StrategySpace(network, state.coverage(), state.available_servers)

    def test_greedy_tier_wins_and_validates(self) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        sink = ListSink()
        result, tier = fallback_decision(
            network, state, self._space(network, state),
            np.random.default_rng(0),
            queue_backlog=1.0, v=50.0, budget=20.0, tracer=Probe([sink]),
        )
        assert tier == "greedy"
        validate_decision(
            network, state,
            repro.Decision(
                assignment=result.assignment,
                allocation=repro.optimal_allocation(
                    network, state, result.assignment
                ),
                frequencies=result.frequencies,
            ),
        )
        assert sink.counters()["resilience.fallback.greedy"] == 1
        assert sink.events("fallback") == [{"t": 0, "tier": "greedy"}]

    def test_last_good_tier_reuses_previous_slot(self, monkeypatch) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        space = self._space(network, state)
        previous, _ = fallback_decision(
            network, state, space, np.random.default_rng(0),
            queue_backlog=1.0, v=50.0, budget=20.0,
        )
        # Break both the greedy P2-A and its P2-B follow-up.
        import repro.baselines.greedy as greedy_mod

        def boom(*args, **kwargs):
            raise SolverError("greedy down")

        monkeypatch.setattr(greedy_mod, "solve_p2a_greedy", boom)
        result, tier = fallback_decision(
            network, state, space, np.random.default_rng(0),
            queue_backlog=1.0, v=50.0, budget=20.0,
            previous=previous.assignment,
            previous_frequencies=previous.frequencies,
        )
        assert tier == "last_good"
        np.testing.assert_array_equal(
            result.assignment.bs_of, previous.assignment.bs_of
        )

    def test_random_tier_is_the_floor(self, monkeypatch) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        import repro.baselines.greedy as greedy_mod

        def boom(*args, **kwargs):
            raise SolverError("greedy down")

        monkeypatch.setattr(greedy_mod, "solve_p2a_greedy", boom)
        # No previous slot: last_good is skipped, random must serve.
        result, tier = fallback_decision(
            network, state, self._space(network, state),
            np.random.default_rng(0),
            queue_backlog=1.0, v=50.0, budget=20.0,
        )
        assert tier == "random"
        np.testing.assert_allclose(result.frequencies, network.freq_min)


class TestControllerUnderChaos:
    def test_injected_failures_fall_back_every_slot(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=13, config=repro.ScenarioConfig(num_devices=10)
        )
        sink = ListSink()
        probe = Probe([sink])
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=1,
            resilience=ResiliencePolicy(
                chaos=SolverChaos(failure_rate=0.2, seed=3)
            ),
            tracer=probe,
        )
        result = repro.run_simulation(
            controller,
            scenario.fresh_compiled_states(30, tracer=probe),
            budget=scenario.budget,
            tracer=probe,
        )
        assert result.horizon == 30  # never-abort: every slot decided
        assert np.isfinite(result.latency).all()
        counters = sink.counters()
        fallbacks = counters["resilience.fallbacks"]
        assert fallbacks >= 3  # 20% of 30 slots, whp
        assert counters["resilience.fallback.greedy"] == fallbacks
        assert len(sink.events("solver_failure")) == fallbacks
        slots = sink.events("slot")
        degraded = [s for s in slots if s.get("fallback", "primary") != "primary"]
        assert len(degraded) == fallbacks

    def test_fail_slots_mark_the_exact_slots(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=13, config=repro.ScenarioConfig(num_devices=10)
        )
        sink = ListSink()
        probe = Probe([sink])
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=1,
            resilience=ResiliencePolicy(chaos=SolverChaos(fail_slots=(2, 5))),
            tracer=probe,
        )
        repro.run_simulation(
            controller, scenario.fresh_states(8, tracer=probe),
            budget=scenario.budget, tracer=probe,
        )
        assert [e["t"] for e in sink.events("fallback")] == [2, 5]

    def test_chaos_without_policy_raises(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=13, config=repro.ScenarioConfig(num_devices=10)
        )
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=1,
            resilience=ResiliencePolicy(
                fallback=False, chaos=SolverChaos(fail_slots=(0,))
            ),
        )
        state = next(iter(scenario.fresh_states(1)))
        with pytest.raises(SolverError):
            controller.step(state)


class TestWatchdog:
    def test_iteration_cap_accepts_partial_results(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=17, config=repro.ScenarioConfig(num_devices=12)
        )
        sink = ListSink()
        probe = Probe([sink])
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=1,
            resilience=ResiliencePolicy(max_engine_iter=2, accept_partial=True),
            tracer=probe,
        )
        result = repro.run_simulation(
            controller, scenario.fresh_states(4, tracer=probe),
            budget=scenario.budget, tracer=probe,
        )
        assert result.horizon == 4
        assert np.isfinite(result.latency).all()
        assert sink.counters().get("resilience.partial_accepts", 0) >= 1

    def test_tight_deadline_still_decides_every_slot(self) -> None:
        scenario = repro.make_paper_scenario(
            seed=17, config=repro.ScenarioConfig(num_devices=12)
        )
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(),
            v=100.0,
            budget=scenario.budget,
            z=3,
            resilience=ResiliencePolicy(deadline_seconds=1e-9),
        )
        result = repro.run_simulation(
            controller, scenario.fresh_states(3), budget=scenario.budget
        )
        assert result.horizon == 3
        assert np.isfinite(result.latency).all()
