"""Robustness tests: extreme states and failure injection.

A controller running for months will see degenerate slots -- idle
devices, demand spikes, price spikes, free electricity, coverage
collapse.  These tests drive such slots through the full pipeline and
require finite, feasible, constraint-respecting decisions.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.state import SlotState, validate_decision
from repro.exceptions import InfeasibleError

from conftest import make_tiny_network, make_tiny_state


def make_controller(network, **overrides) -> repro.DPPController:
    defaults = dict(v=50.0, budget=20.0, z=2)
    defaults.update(overrides)
    return repro.DPPController(network, np.random.default_rng(0), **defaults)


def tiny_state(**overrides) -> SlotState:
    base = make_tiny_state()
    fields = dict(
        t=base.t,
        cycles=base.cycles,
        bits=base.bits,
        spectral_efficiency=base.spectral_efficiency,
        price=base.price,
    )
    fields.update(overrides)
    return SlotState(**fields)


class TestDegenerateSlots:
    def test_all_devices_idle(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        state = tiny_state(cycles=np.zeros(4), bits=np.zeros(4))
        record = controller.step(state)
        assert record.latency == 0.0
        validate_decision(network, state, record.decision())
        # Idle system + positive queue pressure: clocks park at F^L.
        controller2 = make_controller(network, initial_backlog=10.0)
        record2 = controller2.step(state)
        np.testing.assert_allclose(record2.frequencies, network.freq_min)

    def test_single_active_device(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        cycles = np.zeros(4)
        cycles[2] = 150e6
        bits = np.zeros(4)
        bits[2] = 8e6
        state = tiny_state(cycles=cycles, bits=bits)
        record = controller.step(state)
        assert np.isfinite(record.latency)
        assert record.latency > 0.0
        validate_decision(network, state, record.decision())

    def test_demand_spike(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        state = tiny_state(cycles=np.full(4, 1e12), bits=np.full(4, 1e9))
        record = controller.step(state)
        assert np.isfinite(record.latency)
        validate_decision(network, state, record.decision())

    def test_price_spike_with_pressure_throttles_clocks(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network, initial_backlog=50.0)
        cheap = controller.step(tiny_state(price=1e-6))
        controller.reset()
        spiky = controller.step(tiny_state(price=1e3))
        assert spiky.frequencies.mean() < cheap.frequencies.mean()
        np.testing.assert_allclose(spiky.frequencies, network.freq_min, atol=1e-6)

    def test_free_electricity_runs_flat_out(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network, initial_backlog=1e6)
        record = controller.step(tiny_state(price=0.0))
        np.testing.assert_allclose(record.frequencies, network.freq_max)

    def test_near_zero_channel_is_finite(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        h = make_tiny_state().spectral_efficiency.copy()
        h[h > 0] = 1e-6  # abysmal but positive channels
        record = controller.step(tiny_state(spectral_efficiency=h))
        assert np.isfinite(record.latency)


class TestCoverageFailures:
    def test_total_coverage_loss_raises_cleanly(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        h = np.zeros((4, 2))
        h[0, 0] = h[1, 0] = h[3, 0] = 20.0  # device 2 sees nobody
        with pytest.raises(InfeasibleError) as excinfo:
            controller.step(tiny_state(spectral_efficiency=h))
        assert excinfo.value.device == 2

    def test_small_cell_outage_reroutes_devices(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        healthy = controller.step(make_tiny_state(t=0))
        # BS1 goes dark; devices 2/3 must fall back to the macro cell.
        h = make_tiny_state().spectral_efficiency.copy()
        h[:, 1] = 0.0
        record = controller.step(tiny_state(spectral_efficiency=h))
        assert np.all(record.assignment.bs_of == 0)
        validate_decision(
            network, tiny_state(spectral_efficiency=h), record.decision()
        )
        del healthy

    def test_outage_and_recovery_round_trip(self) -> None:
        network = make_tiny_network()
        controller = make_controller(network)
        outage = make_tiny_state().spectral_efficiency.copy()
        outage[:, 1] = 0.0
        for t, h in enumerate(
            [make_tiny_state().spectral_efficiency, outage,
             make_tiny_state().spectral_efficiency]
        ):
            record = controller.step(tiny_state(spectral_efficiency=h))
            assert np.isfinite(record.latency)


class TestLongRunStability:
    def test_no_drift_over_long_horizon(self, small_scenario) -> None:
        controller = repro.DPPController(
            small_scenario.network,
            small_scenario.controller_rng(),
            v=100.0,
            budget=small_scenario.budget,
            z=1,
        )
        result = repro.run_simulation(
            controller,
            small_scenario.fresh_states(400),
            budget=small_scenario.budget,
        )
        assert np.all(np.isfinite(result.latency))
        assert np.all(result.backlog >= 0.0)
        # Queue stays bounded (stable system under a feasible budget).
        assert result.backlog.max() < 1e4
