"""Tests for the multi-cell sharding layer.

Covers the three pillars: cell-partition invariants (every entity in
exactly one cell, coverage preserved), budget-coordinator conservation
(per-cell budgets sum exactly to ``Cbar`` every epoch), and the sharded
engine's reproducibility contract (1 cell bit-identical to the
unsharded facade; pooled execution bit-identical to sequential).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import sharding
from repro.core.budget import BudgetCoordinator, CoordinatedBudget
from repro.exceptions import ConfigurationError
from repro.radio.mobility import RandomWaypointMobility


def metro_scenario(
    seed: int = 9,
    *,
    devices: int = 24,
    base_stations: int = 4,
    clusters: int = 2,
    **extra,
) -> repro.Scenario:
    """A small all-macro, all-wireless topology that partitions cleanly."""
    return repro.make_paper_scenario(
        seed,
        config=repro.ScenarioConfig(num_devices=devices),
        num_base_stations=base_stations,
        num_macro_stations=base_stations,
        wireless_fronthaul_fraction=1.0,
        num_clusters=clusters,
        servers_per_cluster=2,
        **extra,
    )


def trajectories(result) -> tuple:
    return (result.latency, result.cost, result.theta, result.backlog, result.price)


def assert_identical(a, b) -> None:
    for left, right in zip(trajectories(a), trajectories(b)):
        np.testing.assert_array_equal(left, right)


class TestPartitionCells:
    def test_every_entity_in_exactly_one_cell(self) -> None:
        scenario = metro_scenario()
        network = scenario.network
        plan = sharding.partition_cells(
            network, 2, rng=np.random.default_rng(3)
        )
        for attr, total in (
            ("base_stations", network.num_base_stations),
            ("clusters", len(network.clusters)),
            ("servers", network.num_servers),
            ("devices", network.num_devices),
        ):
            seen = [i for cell in plan.cells for i in getattr(cell, attr)]
            assert sorted(seen) == list(range(total)), attr

    def test_device_counts_cover_population(self) -> None:
        scenario = metro_scenario(devices=30)
        plan = sharding.partition_cells(
            scenario.network, 3, rng=np.random.default_rng(0)
        )
        assert int(plan.device_counts().sum()) == 30
        assert plan.num_cells <= 3

    def test_single_cell_plan_is_trivial(self) -> None:
        network = metro_scenario().network
        plan = sharding.partition_cells(network, 1)
        assert plan.num_cells == 1
        assert plan.cells[0].num_devices == network.num_devices

    def test_invalid_cell_counts_rejected(self) -> None:
        network = metro_scenario().network
        with pytest.raises(ConfigurationError, match="num_cells"):
            sharding.partition_cells(network, 0)
        with pytest.raises(ConfigurationError, match="base stations"):
            sharding.partition_cells(network, network.num_base_stations + 1)

    def test_extract_subnetwork_renumbers_consistently(self) -> None:
        scenario = metro_scenario()
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        for cell in plan.cells:
            subnetwork, maps = sharding.extract_subnetwork(
                scenario.network, cell
            )
            assert subnetwork.num_devices == len(cell.devices)
            assert subnetwork.num_base_stations == len(cell.base_stations)
            assert subnetwork.num_servers == len(cell.servers)
            assert maps.devices == cell.devices
            # Positions survive the renumbering: local device j is
            # global device maps.devices[j].
            np.testing.assert_array_equal(
                subnetwork.device_positions(),
                scenario.network.device_positions()[list(maps.devices)],
            )


class TestBudgetCoordinator:
    def test_budgets_conserve_total_every_epoch(self) -> None:
        coordinator = BudgetCoordinator(2.0, np.array([3.0, 1.0, 2.0]))
        rng = np.random.default_rng(1)
        assert coordinator.budgets().sum() == pytest.approx(2.0, abs=1e-12)
        for _ in range(20):
            budgets = coordinator.update(rng.random(3))
            assert budgets.sum() == pytest.approx(2.0, abs=1e-12)
            assert (budgets > 0).all()

    def test_static_mode_keeps_initial_split(self) -> None:
        coordinator = BudgetCoordinator(
            1.0, np.array([1.0, 1.0]), mode="static"
        )
        initial = coordinator.budgets()
        updated = coordinator.update(np.array([5.0, 0.1]))
        np.testing.assert_array_equal(updated, initial)

    def test_proportional_mode_follows_spend(self) -> None:
        coordinator = BudgetCoordinator(
            1.0, np.array([1.0, 1.0]), smoothing=0.0
        )
        budgets = coordinator.update(np.array([3.0, 1.0]))
        assert budgets[0] > budgets[1]

    def test_zero_spend_falls_back_to_fair_shares(self) -> None:
        coordinator = BudgetCoordinator(1.0, np.array([1.0, 3.0]))
        budgets = coordinator.update(np.zeros(2))
        assert budgets.sum() == pytest.approx(1.0, abs=1e-12)
        assert budgets[1] > budgets[0]

    def test_invalid_inputs_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="mode"):
            BudgetCoordinator(1.0, np.ones(2), mode="greedy")
        with pytest.raises(ConfigurationError, match="positive"):
            BudgetCoordinator(0.0, np.ones(2))
        coordinator = BudgetCoordinator(1.0, np.ones(2))
        with pytest.raises(ConfigurationError, match="spends"):
            coordinator.update(np.ones(3))
        with pytest.raises(ConfigurationError, match="non-negative"):
            coordinator.update(np.array([-1.0, 0.0]))

    def test_coordinated_budget_is_a_schedule(self) -> None:
        schedule = CoordinatedBudget(0.5)
        assert schedule.budget_at(0) == 0.5
        schedule.set(0.25)
        assert schedule.budget_at(7) == 0.25
        assert schedule.average == 0.25
        with pytest.raises(ConfigurationError):
            schedule.set(-1.0)


class TestShardScenarios:
    def test_one_cell_returns_the_scenario_itself(self) -> None:
        scenario = metro_scenario()
        plan = sharding.partition_cells(scenario.network, 1)
        shards = sharding.shard_scenarios(scenario, plan)
        assert len(shards) == 1 and shards[0] is scenario

    def test_cells_get_independent_scenarios(self) -> None:
        scenario = metro_scenario()
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        shards = sharding.shard_scenarios(scenario, plan)
        assert len(shards) == plan.num_cells
        assert sum(s.network.num_devices for s in shards) == 24
        budgets = sum(s.budget for s in shards)
        assert budgets == pytest.approx(scenario.budget)
        # Child seed banks give each cell its own streams.
        seeds = {s.seeds.seed for s in shards}
        assert len(seeds) == len(shards)

    def test_mobility_is_rejected(self) -> None:
        scenario = metro_scenario(mobility=RandomWaypointMobility(6000.0))
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        with pytest.raises(ConfigurationError, match="static mobility"):
            sharding.shard_scenarios(scenario, plan)

    def test_capability_check_names_feature_and_fallback(self) -> None:
        # The structured check names the offending feature and the
        # working flag combination, not just "unsupported".
        scenario = metro_scenario(mobility=RandomWaypointMobility(6000.0))
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        with pytest.raises(ConfigurationError) as excinfo:
            sharding.shard_scenarios(scenario, plan)
        message = str(excinfo.value)
        assert "cannot be sharded" in message
        assert "RandomWaypointMobility" in message
        assert "cells=1" in message


class TestFaultPlanSharding:
    """Projecting a global :class:`FaultPlan` onto cell subnetworks."""

    def test_incident_targets_remap_to_local_indices(self) -> None:
        from repro.sim.faults import ScriptedIncident

        incident = ScriptedIncident(
            at=1, duration=2, kind="bs_down", targets=(1, 3)
        )
        # A cell owning global base stations 1 and 2: global 1 becomes
        # local 0, global 3 lies outside and is dropped.
        local = incident.subset((1, 2), ())
        assert local.targets == (0,)
        assert local.at == 1 and local.duration == 2

    def test_incident_outside_cell_is_dropped(self) -> None:
        from repro.sim.faults import ScriptedIncident

        incident = ScriptedIncident(
            at=0, duration=1, kind="server_down", targets=(3,)
        )
        assert incident.subset((), (0, 1)) is None

    def test_price_freeze_kept_in_every_cell(self) -> None:
        from repro.sim.faults import ScriptedIncident

        incident = ScriptedIncident(at=2, duration=3, kind="price_freeze")
        assert incident.subset((), ()) is incident

    def test_plan_subset_projects_faults_and_schedule(self) -> None:
        from repro.sim.faults import (
            BaseStationOutages,
            FaultPlan,
            PriceFeedDropouts,
            ScriptedIncident,
        )

        plan = FaultPlan(
            faults=(BaseStationOutages(), PriceFeedDropouts()),
            schedule=[
                ScriptedIncident(at=0, duration=2, kind="price_freeze"),
                ScriptedIncident(
                    at=1, duration=1, kind="bs_down", targets=(0, 1)
                ),
                ScriptedIncident(
                    at=2, duration=1, kind="bs_down", targets=(3,)
                ),
            ],
        )
        local = plan.subset((0, 1, 2), (0, 1), (0,))
        assert len(local.faults) == len(plan.faults)
        # price_freeze survives, bs_down (0,1) remaps, bs_down (3,)
        # lies outside the cell and is dropped.
        kinds = [i.kind for i in local.schedule.incidents]
        assert kinds == ["price_freeze", "bs_down"]
        assert local.schedule.incidents[1].targets == (0, 1)

    def test_shards_carry_projected_plans(self) -> None:
        from repro.sim.faults import (
            BaseStationOutages,
            FaultPlan,
            ScriptedIncident,
        )

        scenario = metro_scenario(
            fault_plan=FaultPlan(
                faults=(BaseStationOutages(),),
                schedule=[
                    ScriptedIncident(
                        at=1, duration=2, kind="bs_down", targets=(0, 1, 2, 3)
                    )
                ],
            )
        )
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        shards = sharding.shard_scenarios(scenario, plan)
        for shard, cell in zip(shards, plan.cells):
            assert shard.fault_plan is not None
            incident = shard.fault_plan.schedule.incidents[0]
            # The global outage spans every base station, so each cell
            # sees exactly its own stations, renumbered locally.
            assert incident.targets == tuple(range(len(cell.base_stations)))


class TestShardedRun:
    def test_one_cell_bit_identical_to_unsharded(self) -> None:
        baseline = repro.api.run(scenario=metro_scenario(), horizon=6)
        sharded = sharding.run_sharded(
            metro_scenario(), horizon=6, cells=1, epoch=3
        )
        assert_identical(baseline, sharded.merged)
        assert sharded.plan.num_cells == 1

    def test_merged_metrics_sum_across_cells(self) -> None:
        scenario = metro_scenario()
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        result = sharding.run_sharded(scenario, horizon=6, cells=plan, epoch=3)
        assert result.merged.horizon == 6
        cell_cost = sum(c.mean_cost for c in result.cells)
        assert result.merged.time_average_cost() == pytest.approx(cell_cost)

    def test_budgets_conserved_across_epochs(self) -> None:
        scenario = metro_scenario()
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        result = sharding.run_sharded(scenario, horizon=6, cells=plan, epoch=2)
        assert result.budgets.shape == (3, plan.num_cells)
        np.testing.assert_allclose(
            result.budgets.sum(axis=1), scenario.budget, rtol=0, atol=1e-12
        )

    def test_pooled_matches_sequential(self) -> None:
        scenario = metro_scenario()
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        sequential = sharding.run_sharded(
            scenario, horizon=4, cells=plan, epoch=2
        )
        pooled = sharding.run_sharded(
            metro_scenario(), horizon=4, cells=plan, epoch=2, processes=2
        )
        assert_identical(sequential.merged, pooled.merged)

    def test_fixed_controller_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="fixed"):
            sharding.ShardedController(metro_scenario(), 2, controller="fixed")

    def test_backend_list_must_match_cells(self) -> None:
        with pytest.raises(ConfigurationError, match="per cell"):
            sharding.ShardedController(
                metro_scenario(), 2, engine_backend=["numpy"] * 3
            )


class TestResidentRuntime:
    """The resident-worker pooled runtime (PR 9).

    Contract: resident pooled execution is bit-identical to the
    sequential path -- through worker death (salvage replay), fault
    plans, checkpoint/resume, and with shared-memory state shipping on
    or off.
    """

    def fault_plan(self):
        from repro.sim.faults import (
            FaultPlan,
            PriceFeedDropouts,
            ScriptedIncident,
            ServerOutages,
        )

        return FaultPlan(
            faults=(ServerOutages(), PriceFeedDropouts(mtbf_slots=3.0)),
            schedule=[
                ScriptedIncident(at=2, duration=3, kind="price_freeze"),
                ScriptedIncident(
                    at=1, duration=2, kind="server_down", targets=(0,)
                ),
            ],
        )

    def test_legacy_and_resident_match_sequential(self) -> None:
        scenario = metro_scenario()
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        sequential = sharding.run_sharded(
            scenario, horizon=4, cells=plan, epoch=2
        )
        resident = sharding.run_sharded(
            metro_scenario(), horizon=4, cells=plan, epoch=2,
            processes=2, runtime="resident",
        )
        legacy = sharding.run_sharded(
            metro_scenario(), horizon=4, cells=plan, epoch=2,
            processes=2, runtime="legacy",
        )
        assert_identical(sequential.merged, resident.merged)
        assert_identical(sequential.merged, legacy.merged)

    def test_shared_states_off_matches(self) -> None:
        scenario = metro_scenario()
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        with_shm = sharding.run_sharded(
            scenario, horizon=4, cells=plan, epoch=2,
            processes=2, shared_states=True,
        )
        without = sharding.run_sharded(
            metro_scenario(), horizon=4, cells=plan, epoch=2,
            processes=2, shared_states=False,
        )
        assert_identical(with_shm.merged, without.merged)

    def test_invalid_runtime_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="runtime"):
            sharding.ShardedController(metro_scenario(), 2, runtime="warp")

    def test_one_cell_fault_plan_matches_unsharded(self) -> None:
        baseline = repro.api.run(
            scenario=metro_scenario(fault_plan=self.fault_plan()), horizon=6
        )
        sharded = sharding.run_sharded(
            metro_scenario(fault_plan=self.fault_plan()),
            horizon=6, cells=1, epoch=3,
        )
        assert_identical(baseline, sharded.merged)
        # The plan actually fired: a fault-free run differs.
        plain = repro.api.run(scenario=metro_scenario(), horizon=6)
        assert not np.array_equal(plain.price, baseline.price)

    def test_sequential_path_keeps_carry_resident(self, monkeypatch) -> None:
        # Satellite 1: without checkpoints the sequential path never
        # serializes per-cell carry state between epochs.
        from repro.sim import shard_runtime

        calls = {"carry": 0}
        original = shard_runtime.CellRuntime.carry

        def counting(self):
            calls["carry"] += 1
            return original(self)

        monkeypatch.setattr(shard_runtime.CellRuntime, "carry", counting)
        sharding.run_sharded(metro_scenario(), horizon=6, cells=2, epoch=2)
        assert calls["carry"] == 0

    def salvage_case(
        self,
        *,
        carry_every=None,
        fault_plan=None,
        kill=(1, 0),
        hang=None,
        cells=2,
    ):
        scenario = metro_scenario(fault_plan=fault_plan)
        plan = sharding.partition_cells(
            scenario.network, cells, rng=np.random.default_rng(3)
        )
        undisturbed = sharding.run_sharded(
            scenario, horizon=6, cells=plan, epoch=2,
            processes=2, carry_every=carry_every,
        )
        extra = {"timeout_seconds": 2.0} if hang is not None else {}
        ctrl = sharding.ShardedController(
            metro_scenario(fault_plan=fault_plan), plan,
            processes=2, epoch=2, carry_every=carry_every, **extra,
        )
        if hang is not None:
            ctrl._chaos_hang = hang
        else:
            ctrl._chaos_kill = kill
        salvaged = ctrl.run(6)
        assert ctrl._chaos_fired
        assert_identical(undisturbed.merged, salvaged.merged)
        np.testing.assert_array_equal(undisturbed.budgets, salvaged.budgets)

    def test_worker_death_salvage_bit_identical(self) -> None:
        self.salvage_case()

    def test_salvage_from_periodic_carry(self) -> None:
        self.salvage_case(carry_every=1, kill=(2, 1))

    def test_salvage_under_fault_plan(self) -> None:
        # The single resident worker is killed mid-run and rebuilt by
        # replay, with the plan's stochastic draws restored exactly.
        self.salvage_case(fault_plan=self.fault_plan(), cells=1)

    def test_salvage_under_multi_cell_fault_plan(self) -> None:
        self.salvage_case(fault_plan=self.fault_plan(), cells=2)

    def test_salvage_kill_during_first_epoch(self) -> None:
        # Death before any carry exists: the rebuilt worker replays
        # from the initial state.
        self.salvage_case(kill=(0, 0))

    def test_salvage_kill_during_final_epoch(self) -> None:
        self.salvage_case(kill=(2, 0))

    def test_hung_worker_watchdog_salvage(self) -> None:
        # The worker stays alive but stops responding; the heartbeat
        # watchdog detects the silence within the epoch deadline, kills
        # it, and the replayed rebuild stays bit-identical.
        self.salvage_case(hang=(1, 0))

    def test_hung_worker_salvage_under_fault_plan(self) -> None:
        self.salvage_case(hang=(1, 0), fault_plan=self.fault_plan())

    def test_hang_salvage_then_checkpoint_resume(self, tmp_path) -> None:
        # Satellite: hang + kill + salvage, halted at the slot-4
        # snapshot, then resumed from the ShardCheckpoint -- the full
        # escalation ladder ends bit-identical.
        from repro.sim.sharded import _HaltRequested

        scenario = metro_scenario()
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        baseline = sharding.run_sharded(
            scenario, horizon=8, cells=plan, epoch=2
        )
        path = tmp_path / "shard.ckpt"
        ctrl = sharding.ShardedController(
            metro_scenario(), plan, epoch=2, processes=2,
            timeout_seconds=2.0,
        )
        ctrl._chaos_hang = (1, 0)
        ctrl._halt_after_slots = 4
        with pytest.raises(_HaltRequested):
            ctrl.run(8, checkpoint=path)
        assert ctrl._chaos_fired
        resumed = sharding.run_sharded(
            metro_scenario(), horizon=8, cells=plan, epoch=2,
            processes=2, checkpoint=path, resume=True,
        )
        assert_identical(baseline.merged, resumed.merged)
        np.testing.assert_array_equal(baseline.budgets, resumed.budgets)

    def spanning_fault_plan(self):
        from repro.sim.faults import (
            BaseStationOutages,
            FaultPlan,
            PriceFeedDropouts,
            ScriptedIncident,
        )

        return FaultPlan(
            faults=(BaseStationOutages(), PriceFeedDropouts(mtbf_slots=3.0)),
            schedule=[
                ScriptedIncident(at=2, duration=3, kind="price_freeze"),
                # One outage spanning every base station, so the
                # incident lands in both cells of the 2-cell split.
                ScriptedIncident(
                    at=1, duration=2, kind="bs_down", targets=(0, 1, 2, 3)
                ),
            ],
        )

    def test_one_cell_bs_outage_plan_matches_unsharded(self) -> None:
        baseline = repro.api.run(
            scenario=metro_scenario(fault_plan=self.spanning_fault_plan()),
            horizon=6,
        )
        sharded = sharding.run_sharded(
            metro_scenario(fault_plan=self.spanning_fault_plan()),
            horizon=6, cells=1, epoch=3,
        )
        assert_identical(baseline, sharded.merged)

    def test_multi_cell_fault_plan_all_runtimes(self) -> None:
        scenario = metro_scenario(fault_plan=self.spanning_fault_plan())
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        sequential = sharding.run_sharded(
            scenario, horizon=6, cells=plan, epoch=2
        )
        resident = sharding.run_sharded(
            metro_scenario(fault_plan=self.spanning_fault_plan()),
            horizon=6, cells=plan, epoch=2, processes=2,
            runtime="resident",
        )
        legacy = sharding.run_sharded(
            metro_scenario(fault_plan=self.spanning_fault_plan()),
            horizon=6, cells=plan, epoch=2, processes=2,
            runtime="legacy",
        )
        assert_identical(sequential.merged, resident.merged)
        assert_identical(sequential.merged, legacy.merged)
        # The plan actually disturbed the run.
        plain = sharding.run_sharded(
            metro_scenario(), horizon=6, cells=plan, epoch=2
        )
        assert not np.array_equal(
            plain.merged.price, sequential.merged.price
        )

    def test_checkpoint_resume_cross_runtime(self, tmp_path) -> None:
        from repro.sim.sharded import _HaltRequested

        scenario = metro_scenario()
        plan = sharding.partition_cells(
            scenario.network, 2, rng=np.random.default_rng(3)
        )
        baseline = sharding.run_sharded(
            scenario, horizon=8, cells=plan, epoch=2
        )
        path = tmp_path / "shard.ckpt"
        # Sequential writer, halted after the slot-4 snapshot ...
        ctrl = sharding.ShardedController(metro_scenario(), plan, epoch=2)
        ctrl._halt_after_slots = 4
        with pytest.raises(_HaltRequested):
            ctrl.run(8, checkpoint=path)
        # ... resumed by resident pooled workers.
        resumed = sharding.run_sharded(
            metro_scenario(), horizon=8, cells=plan, epoch=2,
            processes=2, checkpoint=path, resume=True,
        )
        assert_identical(baseline.merged, resumed.merged)
        np.testing.assert_array_equal(baseline.budgets, resumed.budgets)

        # And the reverse: resident writer, sequential reader.
        path2 = tmp_path / "shard2.ckpt"
        ctrl = sharding.ShardedController(
            metro_scenario(), plan, epoch=2, processes=2
        )
        ctrl._halt_after_slots = 4
        with pytest.raises(_HaltRequested):
            ctrl.run(8, checkpoint=path2)
        resumed = sharding.run_sharded(
            metro_scenario(), horizon=8, cells=plan, epoch=2,
            checkpoint=path2, resume=True,
        )
        assert_identical(baseline.merged, resumed.merged)

    def test_checkpoint_config_mismatch_rejected(self, tmp_path) -> None:
        from repro.exceptions import CheckpointError

        plan = sharding.partition_cells(
            metro_scenario().network, 2, rng=np.random.default_rng(3)
        )
        path = tmp_path / "shard.ckpt"
        sharding.run_sharded(
            metro_scenario(), horizon=4, cells=plan, epoch=2, checkpoint=path
        )
        with pytest.raises(CheckpointError, match="different sharded run"):
            sharding.run_sharded(
                metro_scenario(seed=10), horizon=4, cells=plan, epoch=2,
                checkpoint=path, resume=True,
            )

    def test_legacy_checkpoint_rejected(self, tmp_path) -> None:
        with pytest.raises(ConfigurationError, match="legacy"):
            sharding.run_sharded(
                metro_scenario(), horizon=4, cells=2, epoch=2,
                processes=2, runtime="legacy",
                checkpoint=tmp_path / "x.ckpt",
            )
