"""Tests for seeding, scenario state generation, engine, metrics, results."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.controller import OnlineController, SlotRecord
from repro.core.state import Assignment, ResourceAllocation, SlotState
from repro.exceptions import ConfigurationError
from repro.sim.engine import run_simulation
from repro.sim.metrics import (
    converged_tail_mean,
    cumulative_time_average,
    slope,
    window_averages,
)
from repro.sim.seeding import SeedBank


class TestSeedBank:
    def test_same_name_same_stream(self) -> None:
        bank = SeedBank(7)
        a = bank.rng("workload").uniform(size=5)
        b = bank.rng("workload").uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_independent(self) -> None:
        bank = SeedBank(7)
        a = bank.rng("workload").uniform(size=5)
        b = bank.rng("channel").uniform(size=5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self) -> None:
        a = SeedBank(1).rng("x").uniform(size=5)
        b = SeedBank(2).rng("x").uniform(size=5)
        assert not np.allclose(a, b)

    def test_child_banks(self) -> None:
        bank = SeedBank(7)
        c1 = bank.child("run1").rng("x").uniform(size=3)
        c2 = bank.child("run2").rng("x").uniform(size=3)
        again = bank.child("run1").rng("x").uniform(size=3)
        assert not np.allclose(c1, c2)
        np.testing.assert_array_equal(c1, again)


class TestStateGeneration:
    def test_states_are_valid_and_sized(self, small_scenario: repro.Scenario) -> None:
        states = list(small_scenario.fresh_states(5))
        assert len(states) == 5
        for t, state in enumerate(states):
            assert state.t == t
            assert state.num_devices == small_scenario.network.num_devices
            assert state.price > 0.0
            assert np.all(state.cycles > 0.0)
            assert np.all(state.bits > 0.0)
            assert np.all(state.coverage().any(axis=1))

    def test_fresh_states_reproducible(self, small_scenario: repro.Scenario) -> None:
        first = [s.price for s in small_scenario.fresh_states(6)]
        second = [s.price for s in small_scenario.fresh_states(6)]
        np.testing.assert_allclose(first, second)
        c_first = next(iter(small_scenario.fresh_states(1))).cycles
        c_second = next(iter(small_scenario.fresh_states(1))).cycles
        np.testing.assert_allclose(c_first, c_second)

    def test_price_scale_applied(self, small_scenario: repro.Scenario) -> None:
        # $/MWh trends in the tens; scaled to dollars per watt-slot.
        state = next(iter(small_scenario.fresh_states(1)))
        assert state.price < 1e-3

    def test_device_count_mismatch_rejected(
        self, small_scenario: repro.Scenario
    ) -> None:
        from repro.radio.channel import UniformChannelModel
        from repro.sim.scenario import StateGenerator
        from repro.energy.pricing import ConstantPriceModel
        from repro.workload.generators import UniformTaskGenerator

        with pytest.raises(ConfigurationError):
            StateGenerator(
                small_scenario.network,
                UniformTaskGenerator(small_scenario.network.num_devices + 1),
                UniformChannelModel(),
                ConstantPriceModel(1.0),
            )


class _CountingController(OnlineController):
    """Minimal controller double for engine tests."""

    def __init__(self) -> None:
        self.steps = 0

    def step(self, state: SlotState) -> SlotRecord:
        self.steps += 1
        n = state.num_devices
        assignment = Assignment(
            bs_of=np.zeros(n, dtype=np.int64), server_of=np.zeros(n, dtype=np.int64)
        )
        allocation = ResourceAllocation(
            access_share=np.full(n, 1.0 / n),
            fronthaul_share=np.full(n, 1.0 / n),
            compute_share=np.full(n, 1.0 / n),
        )
        return SlotRecord(
            t=state.t,
            assignment=assignment,
            frequencies=np.array([2.0]),
            allocation=allocation,
            latency=float(state.t + 1),
            cost=2.0,
            theta=1.0,
            backlog_before=float(state.t),
            backlog_after=float(state.t + 1),
            solve_seconds=0.001,
        )

    def reset(self) -> None:
        self.steps = 0


class TestEngine:
    def make_states(self, horizon: int) -> list[SlotState]:
        return [
            SlotState(
                t=t,
                cycles=np.array([1.0]),
                bits=np.array([1.0]),
                spectral_efficiency=np.array([[20.0]]),
                price=0.5,
            )
            for t in range(horizon)
        ]

    def test_trajectories_collected(self) -> None:
        controller = _CountingController()
        result = run_simulation(controller, self.make_states(4), budget=1.5)
        assert controller.steps == 4
        assert result.horizon == 4
        np.testing.assert_allclose(result.latency, [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(result.cost, 2.0)
        np.testing.assert_allclose(result.price, 0.5)
        assert result.budget == 1.5
        assert result.records == []

    def test_keep_records(self) -> None:
        result = run_simulation(
            _CountingController(), self.make_states(3), keep_records=True
        )
        assert len(result.records) == 3
        assert result.records[2].t == 2

    def test_on_slot_callback(self) -> None:
        seen = []
        run_simulation(
            _CountingController(), self.make_states(3), on_slot=lambda r: seen.append(r.t)
        )
        assert seen == [0, 1, 2]

    def test_summary(self) -> None:
        result = run_simulation(_CountingController(), self.make_states(4), budget=1.5)
        summary = result.summary()
        assert summary.horizon == 4
        assert summary.mean_latency == pytest.approx(2.5)
        assert summary.mean_cost == pytest.approx(2.0)
        assert summary.budget_satisfied is False
        assert summary.final_backlog == pytest.approx(4.0)

    def test_summary_without_budget(self) -> None:
        result = run_simulation(_CountingController(), self.make_states(2))
        assert result.summary().budget_satisfied is None


class TestMetrics:
    def test_window_averages(self) -> None:
        values = np.arange(10, dtype=float)
        np.testing.assert_allclose(window_averages(values, 4), [1.5, 5.5])

    def test_window_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            window_averages(np.arange(3, dtype=float), 0)
        with pytest.raises(ConfigurationError):
            window_averages(np.arange(3, dtype=float), 5)

    def test_cumulative_time_average(self) -> None:
        np.testing.assert_allclose(
            cumulative_time_average(np.array([2.0, 4.0, 6.0])), [2.0, 3.0, 4.0]
        )
        assert cumulative_time_average(np.array([])).size == 0

    def test_converged_tail_mean(self) -> None:
        values = np.concatenate([np.full(50, 100.0), np.full(50, 2.0)])
        assert converged_tail_mean(values, fraction=0.5) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            converged_tail_mean(values, fraction=0.0)
        with pytest.raises(ConfigurationError):
            converged_tail_mean(np.array([]))

    def test_slope(self) -> None:
        assert slope(np.array([0.0, 1.0, 2.0, 3.0])) == pytest.approx(1.0)
        assert slope(np.full(10, 5.0)) == pytest.approx(0.0)
        with pytest.raises(ConfigurationError):
            slope(np.array([1.0]))
