"""Tests for the quadratic congestion assignment substrate."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers.assignment import (
    QuadraticCongestionProblem,
    congestion_free_lower_bound,
)


def make_problem(
    num_items: int = 3,
    num_resources: int = 4,
    options_per_item: int = 3,
    seed: int = 0,
) -> QuadraticCongestionProblem:
    rng = np.random.default_rng(seed)
    options = []
    item_weights = []
    for _ in range(num_items):
        opts, weights = [], []
        for _ in range(options_per_item):
            used = rng.choice(num_resources, size=2, replace=False)
            opts.append(np.sort(used).astype(np.int64))
            weights.append(rng.uniform(0.5, 2.0, size=2))
        options.append(opts)
        item_weights.append(weights)
    return QuadraticCongestionProblem(
        num_items=num_items,
        num_resources=num_resources,
        resource_weights=rng.uniform(0.5, 1.5, size=num_resources),
        options=options,
        item_weights=item_weights,
    )


class TestConstruction:
    def test_empty_option_list_rejected(self) -> None:
        with pytest.raises(ValueError, match="no feasible option"):
            QuadraticCongestionProblem(
                num_items=1,
                num_resources=1,
                resource_weights=np.ones(1),
                options=[[]],
                item_weights=[[]],
            )

    def test_mismatched_lengths_rejected(self) -> None:
        with pytest.raises(ValueError):
            QuadraticCongestionProblem(
                num_items=2,
                num_resources=1,
                resource_weights=np.ones(1),
                options=[[np.array([0])]],
                item_weights=[[np.array([1.0])], [np.array([1.0])]],
            )


class TestCostAlgebra:
    def test_total_cost_matches_direct_formula(self) -> None:
        problem = make_problem(seed=1)
        choice = [0, 1, 2]
        loads = np.zeros(problem.num_resources)
        for i, j in enumerate(choice):
            loads[problem.options[i][j]] += problem.item_weights[i][j]
        expected = float(problem.resource_weights @ (loads**2))
        assert problem.total_cost(choice) == pytest.approx(expected)

    def test_marginal_cost_equals_total_difference(self) -> None:
        problem = make_problem(seed=2)
        loads = np.zeros(problem.num_resources)
        problem.apply(0, 1, loads)
        before = float(problem.resource_weights @ (loads**2))
        marginal = problem.marginal_cost(1, 0, loads)
        problem.apply(1, 0, loads)
        after = float(problem.resource_weights @ (loads**2))
        assert marginal == pytest.approx(after - before)

    def test_marginal_costs_vectorised_matches_scalar(self) -> None:
        problem = make_problem(seed=3)
        loads = np.zeros(problem.num_resources)
        problem.apply(0, 0, loads)
        vec = problem.marginal_costs(1, loads)
        for j in range(len(problem.options[1])):
            assert vec[j] == pytest.approx(problem.marginal_cost(1, j, loads))

    def test_apply_remove_roundtrip(self) -> None:
        problem = make_problem(seed=4)
        loads = np.zeros(problem.num_resources)
        problem.apply(2, 1, loads)
        problem.remove(2, 1, loads)
        np.testing.assert_allclose(loads, 0.0, atol=1e-15)

    def test_cheapest_option_is_argmin(self) -> None:
        problem = make_problem(seed=5)
        loads = np.abs(np.random.default_rng(0).standard_normal(4))
        j, cost = problem.cheapest_option(0, loads)
        all_costs = [
            problem.marginal_cost(0, jj, loads)
            for jj in range(len(problem.options[0]))
        ]
        assert cost == pytest.approx(min(all_costs))
        assert all_costs[j] == pytest.approx(cost)


class TestLowerBound:
    def test_bound_never_exceeds_any_assignment(self) -> None:
        problem = make_problem(num_items=3, options_per_item=2, seed=6)
        bound = congestion_free_lower_bound(problem)
        for combo in itertools.product(range(2), repeat=3):
            assert bound <= problem.total_cost(list(combo)) + 1e-9

    def test_bound_tight_when_items_never_collide(self) -> None:
        # One item per resource, one option each: no congestion at all.
        problem = QuadraticCongestionProblem(
            num_items=2,
            num_resources=2,
            resource_weights=np.array([1.0, 2.0]),
            options=[[np.array([0])], [np.array([1])]],
            item_weights=[[np.array([3.0])], [np.array([0.5])]],
        )
        bound = congestion_free_lower_bound(problem)
        assert bound == pytest.approx(problem.total_cost([0, 0]))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_bound_below_brute_force_optimum(self, seed: int) -> None:
        problem = make_problem(num_items=3, options_per_item=2, seed=seed)
        bound = congestion_free_lower_bound(problem)
        optimum = min(
            problem.total_cost(list(c))
            for c in itertools.product(range(2), repeat=3)
        )
        assert bound <= optimum + 1e-9
