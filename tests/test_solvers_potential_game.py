"""Tests for the generic best-response dynamics engine on synthetic games."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.solvers.potential_game import FiniteGame, best_response_dynamics


class MatrixCongestionGame(FiniteGame):
    """A tiny unweighted congestion game: players choose one of R resources.

    Cost of a player on resource r is ``weights[r] * (number of players
    on r)``.  This is an exact potential game (Rosenthal), so the engine
    must always converge.
    """

    def __init__(self, num_players: int, weights: list[float], profile: list[int]):
        self._weights = np.asarray(weights, dtype=np.float64)
        self._profile = list(profile)
        self._n = num_players

    @property
    def num_players(self) -> int:
        return self._n

    def _count(self, r: int) -> int:
        return sum(1 for s in self._profile if s == r)

    def player_cost(self, player: int) -> float:
        r = self._profile[player]
        return float(self._weights[r] * self._count(r))

    def best_response(self, player: int):
        current = self._profile[player]
        best_r, best_cost = current, self.player_cost(player)
        for r in range(self._weights.size):
            occupancy = self._count(r) + (0 if r == current else 1)
            cost = float(self._weights[r] * occupancy)
            if cost < best_cost - 1e-12:
                best_r, best_cost = r, cost
        return best_r, best_cost

    def move(self, player: int, strategy) -> None:
        self._profile[player] = int(strategy)

    def strategy_of(self, player: int):
        return self._profile[player]

    def potential(self) -> float:
        # Rosenthal potential: sum_r w_r * (1 + 2 + ... + n_r).
        total = 0.0
        for r in range(self._weights.size):
            n_r = self._count(r)
            total += self._weights[r] * n_r * (n_r + 1) / 2.0
        return total


def test_converges_to_nash_with_zero_slack() -> None:
    game = MatrixCongestionGame(4, [1.0, 1.0], [0, 0, 0, 0])
    result = best_response_dynamics(game)
    assert result.converged
    # Equal resources: the equilibrium splits 2/2.
    profile = [game.strategy_of(i) for i in range(4)]
    assert sorted(profile).count(0) == 2


def test_no_move_when_already_at_equilibrium() -> None:
    game = MatrixCongestionGame(2, [1.0, 1.0], [0, 1])
    result = best_response_dynamics(game)
    assert result.converged
    assert result.iterations == 0


def test_positive_slack_accepts_near_equilibria() -> None:
    # Player on the expensive resource could improve 3 -> 2.9 (3.3%);
    # slack of 10% tolerates it, so no move happens.
    game = MatrixCongestionGame(1, [3.0, 2.9], [0])
    eager = best_response_dynamics(
        MatrixCongestionGame(1, [3.0, 2.9], [0]), slack=0.0
    )
    lazy = best_response_dynamics(game, slack=0.10)
    assert eager.iterations == 1
    assert lazy.iterations == 0


def test_every_move_decreases_rosenthal_potential() -> None:
    rng = np.random.default_rng(3)
    game = MatrixCongestionGame(
        8, rng.uniform(0.5, 2.0, size=4).tolist(), rng.integers(4, size=8).tolist()
    )
    potentials = [game.potential()]

    # Drive the dynamics one move at a time to observe the invariant; the
    # engine raises ConvergenceError when the single-move budget is spent.
    while True:
        try:
            best_response_dynamics(game, max_iter=1)
        except ConvergenceError:
            potentials.append(game.potential())
            continue
        potentials.append(game.potential())
        break
    diffs = np.diff(potentials)
    # The last "move" is the converged check (no change); all true moves
    # strictly decrease the potential.
    assert np.all(diffs <= 1e-12)


def test_history_recording() -> None:
    game = MatrixCongestionGame(4, [1.0, 1.0], [0, 0, 0, 0])
    result = best_response_dynamics(game, record_history=True)
    assert len(result.cost_history) == result.iterations + 1
    assert result.cost_history[-1] == pytest.approx(result.total_cost)


def test_round_robin_and_random_selection_converge() -> None:
    for selection in ("round_robin", "random"):
        game = MatrixCongestionGame(6, [1.0, 1.3, 0.7], [0] * 6)
        result = best_response_dynamics(
            game, selection=selection, rng=np.random.default_rng(0)
        )
        assert result.converged


def test_random_selection_requires_rng() -> None:
    game = MatrixCongestionGame(2, [1.0, 1.0], [0, 0])
    with pytest.raises(ValueError):
        best_response_dynamics(game, selection="random")


def test_unknown_selection_rejected() -> None:
    game = MatrixCongestionGame(2, [1.0, 1.0], [0, 0])
    with pytest.raises(ValueError):
        best_response_dynamics(game, selection="steepest")


def test_invalid_slack_rejected() -> None:
    game = MatrixCongestionGame(2, [1.0, 1.0], [0, 0])
    with pytest.raises(ValueError):
        best_response_dynamics(game, slack=1.0)


def test_max_iter_exhaustion_raises_with_partial_result() -> None:
    game = MatrixCongestionGame(10, [1.0, 1.0, 1.0], [0] * 10)
    with pytest.raises(ConvergenceError) as excinfo:
        best_response_dynamics(game, max_iter=1)
    partial = excinfo.value.best_so_far
    assert partial is not None
    assert partial.iterations == 1
    assert not partial.converged
