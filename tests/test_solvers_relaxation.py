"""Tests for the Frank-Wolfe relaxation bound."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SolverError
from repro.solvers.relaxation import solve_fractional_relaxation

from test_solvers_assignment import make_problem


def brute_force_optimum(problem) -> float:
    sizes = [len(problem.options[i]) for i in range(problem.num_items)]
    return min(
        problem.total_cost(list(combo))
        for combo in itertools.product(*(range(s) for s in sizes))
    )


class TestFrankWolfe:
    def test_lower_bound_below_integer_optimum(self) -> None:
        problem = make_problem(num_items=4, options_per_item=3, seed=11)
        result = solve_fractional_relaxation(problem, max_iter=400)
        optimum = brute_force_optimum(problem)
        assert result.lower_bound <= optimum + 1e-9

    def test_value_at_least_lower_bound(self) -> None:
        problem = make_problem(seed=12)
        result = solve_fractional_relaxation(problem)
        assert result.value >= result.lower_bound - 1e-9

    def test_gap_shrinks_with_iterations(self) -> None:
        problem = make_problem(num_items=6, options_per_item=4, seed=13)
        short = solve_fractional_relaxation(problem, max_iter=5, gap_tol=0.0)
        long = solve_fractional_relaxation(problem, max_iter=400, gap_tol=0.0)
        assert long.gap <= short.gap + 1e-12

    def test_single_option_items_are_exact(self) -> None:
        # With one option each the relaxation IS the integer problem.
        problem = make_problem(num_items=3, options_per_item=1, seed=14)
        result = solve_fractional_relaxation(problem, max_iter=50)
        expected = problem.total_cost([0, 0, 0])
        assert result.value == pytest.approx(expected, rel=1e-6)
        assert result.lower_bound == pytest.approx(expected, rel=1e-4)

    def test_invalid_max_iter(self) -> None:
        problem = make_problem(seed=15)
        with pytest.raises(SolverError):
            solve_fractional_relaxation(problem, max_iter=0)

    def test_lower_bound_nonnegative(self) -> None:
        problem = make_problem(seed=16)
        result = solve_fractional_relaxation(problem, max_iter=3, gap_tol=0.0)
        assert result.lower_bound >= 0.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_certificate_validity(self, seed: int) -> None:
        problem = make_problem(num_items=3, options_per_item=2, seed=seed)
        result = solve_fractional_relaxation(problem, max_iter=200)
        assert result.lower_bound <= brute_force_optimum(problem) + 1e-9

    def test_converges_tight_on_large_instance(self) -> None:
        problem = make_problem(num_items=30, options_per_item=5, seed=17)
        result = solve_fractional_relaxation(problem, max_iter=800)
        # Relative duality gap should be tiny after enough iterations.
        assert result.gap <= 1e-3 * max(1.0, result.value)
