"""Tests for the bounded scalar convex minimiser."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SolverError
from repro.solvers.scalar import minimize_convex_scalar, minimize_scalar_newton


class TestGoldenSection:
    def test_interior_minimum_quadratic(self) -> None:
        result = minimize_convex_scalar(lambda x: (x - 2.0) ** 2 + 1.0, 0.0, 5.0)
        assert result.converged
        assert result.x == pytest.approx(2.0, abs=1e-6)
        assert result.value == pytest.approx(1.0, abs=1e-10)

    def test_minimum_at_lower_bound(self) -> None:
        result = minimize_convex_scalar(lambda x: x * x, 1.0, 3.0)
        assert result.x == pytest.approx(1.0)
        assert result.value == pytest.approx(1.0)

    def test_minimum_at_upper_bound(self) -> None:
        result = minimize_convex_scalar(lambda x: -x, 0.0, 2.0)
        assert result.x == pytest.approx(2.0)
        assert result.value == pytest.approx(-2.0)

    def test_degenerate_interval(self) -> None:
        result = minimize_convex_scalar(lambda x: x * x, 1.5, 1.5)
        assert result.x == 1.5
        assert result.converged

    def test_empty_interval_raises(self) -> None:
        with pytest.raises(SolverError):
            minimize_convex_scalar(lambda x: x, 2.0, 1.0)

    def test_nonfinite_bounds_raise(self) -> None:
        with pytest.raises(SolverError):
            minimize_convex_scalar(lambda x: x, 0.0, math.inf)

    def test_p2b_shaped_objective(self) -> None:
        # V*A/omega + Q*p*(a omega^2 + b omega + c): the exact P2-B form.
        v_a, qp = 50.0, 0.3
        a, b, c = 5.0, 2.0, 10.0

        def objective(w: float) -> float:
            return v_a / w + qp * (a * w * w + b * w + c)

        result = minimize_convex_scalar(objective, 1.8, 3.6, tol=1e-10)
        # Stationary point solves 2 a qp w^3 + b qp w^2 = v_a.
        roots = np.roots([2 * a * qp, b * qp, 0.0, -v_a])
        real = [float(r.real) for r in roots if abs(r.imag) < 1e-9 and r.real > 0]
        expected = min(max(real[0], 1.8), 3.6)
        assert result.x == pytest.approx(expected, abs=1e-5)

    @given(
        center=st.floats(-5.0, 5.0),
        lo=st.floats(-10.0, 0.0),
        width=st.floats(0.5, 20.0),
    )
    def test_property_quadratic_minimum_clipped(
        self, center: float, lo: float, width: float
    ) -> None:
        hi = lo + width
        result = minimize_convex_scalar(
            lambda x: (x - center) ** 2, lo, hi, tol=1e-9
        )
        expected = min(max(center, lo), hi)
        assert result.x == pytest.approx(expected, abs=1e-4 * max(1.0, width))

    @given(slope=st.floats(-3.0, 3.0), intercept=st.floats(-2.0, 2.0))
    def test_property_linear_objective_picks_endpoint(
        self, slope: float, intercept: float
    ) -> None:
        result = minimize_convex_scalar(
            lambda x: slope * x + intercept, 0.0, 1.0
        )
        values = {0.0: intercept, 1.0: slope + intercept}
        assert result.value <= min(values.values()) + 1e-9


class TestNewton:
    def test_interior_root(self) -> None:
        # d/dx (x - 2)^2 = 2(x - 2).
        x = minimize_scalar_newton(
            lambda x: 2 * (x - 2.0), lambda x: 2.0, 0.0, 5.0
        )
        assert x == pytest.approx(2.0, abs=1e-8)

    def test_monotone_increasing_gradient_at_lower_end(self) -> None:
        x = minimize_scalar_newton(lambda x: 1.0 + x, lambda x: 1.0, 0.0, 5.0)
        assert x == 0.0

    def test_monotone_decreasing_objective_returns_upper(self) -> None:
        x = minimize_scalar_newton(lambda x: -1.0, lambda x: 0.0, 0.0, 5.0)
        assert x == 5.0

    def test_empty_interval_raises(self) -> None:
        with pytest.raises(SolverError):
            minimize_scalar_newton(lambda x: x, lambda x: 1.0, 2.0, 1.0)

    def test_agrees_with_golden_section_on_p2b_form(self) -> None:
        v_a, qp, a, b = 80.0, 0.2, 6.0, 1.5

        def grad(w: float) -> float:
            return -v_a / (w * w) + qp * (2 * a * w + b)

        def hess(w: float) -> float:
            return 2 * v_a / w**3 + qp * 2 * a

        newton = minimize_scalar_newton(grad, hess, 1.8, 3.6)
        golden = minimize_convex_scalar(
            lambda w: v_a / w + qp * (a * w * w + b * w), 1.8, 3.6, tol=1e-10
        )
        assert newton == pytest.approx(golden.x, abs=1e-5)
