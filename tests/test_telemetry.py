"""Tests for the fleet telemetry layer.

Covers the registry primitives (counters, gauges, histograms, label
binding), the OpenMetrics exposition round trip, cross-process
snapshot/merge semantics (gauge recency stamps), the bus-to-registry
:class:`~repro.obs.telemetry.TelemetrySink`, per-kernel profiling
instrumentation, the HTTP exposition server, and the end-to-end
contracts: telemetry never changes simulation results, and sharded runs
stream per-cell series into one registry on both execution paths.
"""

from __future__ import annotations

import math
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.obs import Probe
from repro.obs.dashboard import render_profile_report
from repro.obs.server import MetricsServer
from repro.obs.telemetry import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    TelemetrySink,
    histogram_summaries,
    instrument_kernels,
    maybe_instrument_kernels,
    metric_name,
    parse_openmetrics,
    telemetry_context,
)
from repro.sim.sharded import run_sharded

from tests.test_sharding import assert_identical, metro_scenario


class TestRegistryPrimitives:
    def test_counter_accumulates_and_rejects_negative(self) -> None:
        reg = MetricsRegistry()
        c = reg.counter("repro_jobs_total", "jobs")
        c.inc(2.0, cell=0)
        c.inc(3.0, cell=0)
        c.inc(1.0, cell=1)
        assert c.value(cell=0) == 5.0
        assert c.value(cell=1) == 1.0
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_counter_total_suffix_normalised(self) -> None:
        reg = MetricsRegistry()
        a = reg.counter("repro_slots_total")
        b = reg.counter("repro_slots")
        assert a is b
        a.inc(1.0)
        assert reg.get("repro_slots_total") is a
        text = reg.render_openmetrics()
        assert "# TYPE repro_slots counter" in text
        assert "repro_slots_total 1.0" in text

    def test_gauge_keeps_last_value(self) -> None:
        reg = MetricsRegistry()
        g = reg.gauge("repro_queue_backlog", "backlog")
        g.set(4.0, cell=0)
        g.set(2.5, cell=0)
        assert g.value(cell=0) == 2.5

    def test_histogram_buckets_sum_count_and_overflow(self) -> None:
        reg = MetricsRegistry()
        h = reg.histogram("repro_t_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 100.0):
            h.observe(v)
        stats = h.stats()
        assert stats["count"] == 4
        assert stats["sum"] == pytest.approx(101.05)
        text = reg.render_openmetrics()
        # Cumulative buckets: 1 under 0.1, 3 under 1.0, 4 under +Inf.
        assert 'repro_t_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_t_seconds_bucket{le="1.0"} 3' in text
        assert 'repro_t_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_t_seconds_count 4" in text

    def test_type_clash_raises(self) -> None:
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_x")

    def test_invalid_metric_name_rejected(self) -> None:
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")

    def test_metric_name_mangles_bus_names(self) -> None:
        assert metric_name("queue.backlog") == "repro_queue_backlog"
        assert metric_name("p2b.scalar_solves") == "repro_p2b_scalar_solves"
        assert metric_name("resilience.shard-retries").startswith("repro_")


class TestOpenMetricsRoundTrip:
    def test_render_parse_round_trip_with_label_escaping(self) -> None:
        reg = MetricsRegistry()
        reg.counter("repro_evil_total", "help").inc(
            1.0, path='a"b\\c', note="line\nbreak"
        )
        reg.gauge("repro_g").set(math.inf)
        reg.histogram("repro_h_seconds", buckets=(1.0,)).observe(0.5, cell=3)
        text = reg.render_openmetrics()
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)
        assert families["repro_evil"]["type"] == "counter"
        [(name, labels, value)] = families["repro_evil"]["samples"]
        assert name == "repro_evil_total"
        assert labels == {"path": 'a"b\\c', "note": "line\nbreak"}
        assert value == 1.0
        assert families["repro_g"]["samples"][0][2] == math.inf
        hist_samples = families["repro_h_seconds"]["samples"]
        assert any(n.endswith("_bucket") for n, _, _ in hist_samples)

    def test_parser_rejects_malformed_text(self) -> None:
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n")
        with pytest.raises(ValueError):
            parse_openmetrics("x_total 1\n# EOF\n")  # sample before TYPE


class TestSnapshotMerge:
    def test_counters_and_histograms_add(self) -> None:
        worker = MetricsRegistry()
        worker.counter("repro_n_total").inc(2.0, cell=0)
        worker.histogram("repro_t_seconds", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("repro_n_total").inc(1.0, cell=0)
        parent.merge_snapshot(worker.snapshot(), generation=1)
        parent.merge_snapshot(worker.snapshot(), generation=2)
        assert parent.counter("repro_n_total").value(cell=0) == 5.0
        assert parent.histogram("repro_t_seconds").stats()["count"] == 2

    def test_gauge_recency_ignores_stale_generations(self) -> None:
        early = MetricsRegistry()
        early.gauge("repro_q").set(10.0, cell=0)
        late = MetricsRegistry()
        late.gauge("repro_q").set(3.0, cell=0)
        parent = MetricsRegistry()
        # Later epoch merged first; the stale early snapshot must not
        # roll the gauge backwards when its future completes late.
        parent.merge_snapshot(late.snapshot(), generation=5)
        parent.merge_snapshot(early.snapshot(), generation=1)
        assert parent.gauge("repro_q").value(cell=0) == 3.0

    def test_local_sets_lose_to_merged_generations(self) -> None:
        parent = MetricsRegistry()
        parent.gauge("repro_q").set(99.0)
        worker = MetricsRegistry()
        worker.gauge("repro_q").set(1.0)
        parent.merge_snapshot(worker.snapshot(), generation=1)
        assert parent.gauge("repro_q").value() == 1.0

    def test_histogram_bound_mismatch_raises(self) -> None:
        a = MetricsRegistry()
        a.histogram("repro_t_seconds", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("repro_t_seconds", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bounds"):
            b.merge_snapshot(a.snapshot())


class TestTelemetrySink:
    def test_bus_events_map_to_families(self) -> None:
        reg = MetricsRegistry()
        probe = Probe()
        probe.add_sink(TelemetrySink(reg, labels={"cell": 2}))
        with probe.span("slot"):
            with probe.span("bdma"):
                pass
        probe.counter("engine.moves", 3)
        probe.gauge("queue.backlog", 7.5)
        probe.event("slot", {"t": 0, "latency": 0.4, "cost": 0.2, "theta": -0.1})
        probe.event(
            "alert",
            {"monitor": "budget_drift", "severity": "warning", "cell": "2"},
        )
        assert reg.counter("repro_slots_total").value(cell=2) == 1.0
        assert reg.counter("repro_engine_moves_total").value(cell=2) == 3.0
        assert reg.gauge("repro_queue_backlog").value(cell=2) == 7.5
        assert reg.gauge("repro_budget_drift").value(cell=2) == pytest.approx(-0.1)
        assert (
            reg.counter("repro_alerts_total").value(
                cell=2, monitor="budget_drift", severity="warning"
            )
            == 1.0
        )
        phases = reg.histogram("repro_phase_seconds")
        assert phases.stats(cell=2, phase="slot")["count"] == 1
        assert phases.stats(cell=2, phase="slot/bdma")["count"] == 1

    def test_budget_drift_is_running_mean_of_theta(self) -> None:
        reg = MetricsRegistry()
        probe = Probe()
        probe.add_sink(TelemetrySink(reg))
        for theta in (0.2, 0.4):
            probe.event("slot", {"t": 0, "latency": 0, "cost": 0, "theta": theta})
        assert reg.gauge("repro_budget_drift").value() == pytest.approx(0.3)

    def test_invalid_constant_label_rejected(self) -> None:
        with pytest.raises(ValueError):
            TelemetrySink(MetricsRegistry(), labels={"bad name": 1})


class TestKernelInstrumentation:
    def test_wrapped_backend_preserves_results_and_records(self) -> None:
        from repro.kernels import get_kernels

        base = get_kernels("numpy")
        reg = MetricsRegistry()
        wrapped = instrument_kernels(base, reg, labels={"cell": 0})
        assert wrapped.name == base.name
        args = tuple(
            np.linspace(0.1 * (i + 1), 0.2 * (i + 1), 3) for i in range(9)
        )
        costs_base = base.candidate_costs(*args)
        costs_wrapped = wrapped.candidate_costs(*args)
        np.testing.assert_array_equal(costs_base, costs_wrapped)
        rows = histogram_summaries(reg, "repro_kernel_seconds")
        assert rows and rows[0]["labels"]["kernel"] == "candidate_costs"
        assert rows[0]["count"] == 1

    def test_maybe_instrument_is_noop_without_context(self) -> None:
        from repro.kernels import get_kernels

        base = get_kernels("numpy")
        assert maybe_instrument_kernels(base) is base

    def test_context_scopes_instrumentation(self) -> None:
        from repro.kernels import get_kernels

        base = get_kernels("numpy")
        reg = MetricsRegistry()
        with telemetry_context(reg, {"cell": 1}):
            wrapped = maybe_instrument_kernels(base)
        assert wrapped is not base
        assert maybe_instrument_kernels(base) is base
        # None registry: pass-through no-op.
        with telemetry_context(None):
            assert maybe_instrument_kernels(base) is base

    def test_controller_run_records_kernel_seconds(self) -> None:
        reg = MetricsRegistry()
        result = repro.api.run(horizon=4, metrics_registry=reg)
        assert result.horizon == 4
        rows = histogram_summaries(reg, "repro_kernel_seconds")
        kernels = {row["labels"]["kernel"] for row in rows}
        assert "gap_sweep" in kernels


class TestResultsUnchanged:
    def test_unsharded_fingerprint_identical_with_registry(self) -> None:
        base = repro.api.run(horizon=8)
        telem = repro.api.run(horizon=8, metrics_registry=MetricsRegistry())
        assert_identical(base, telem)

    def test_sharded_fingerprint_identical_with_registry(self) -> None:
        scenario = metro_scenario()
        base = run_sharded(scenario, horizon=8, cells=2, epoch=4, budget=40.0)
        telem = run_sharded(
            metro_scenario(),
            horizon=8,
            cells=2,
            epoch=4,
            budget=40.0,
            registry=MetricsRegistry(),
            monitors=True,
        )
        assert_identical(base.merged, telem.merged)


class TestMetricsServer:
    def test_scrape_parses_and_404s(self) -> None:
        reg = MetricsRegistry()
        reg.counter("repro_up_total").inc(1.0)
        with MetricsServer(reg, port=0) as server:
            with urllib.request.urlopen(server.url) as resp:
                assert "openmetrics-text" in resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
            families = parse_openmetrics(body)
            assert "repro_up" in families
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope"
                )
        # Closed server no longer accepts connections.
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(server.url, timeout=0.5)

    def test_run_facade_serves_live_metrics(self, monkeypatch) -> None:
        import repro.obs.server as server_mod

        seen: dict = {}
        orig_start = server_mod.MetricsServer.start

        def start_hook(self):
            orig_start(self)
            seen["url"] = self.url

        monkeypatch.setattr(server_mod.MetricsServer, "start", start_hook)

        def on_slot(record) -> None:
            if "url" in seen and "body" not in seen:
                seen["body"] = (
                    urllib.request.urlopen(seen["url"]).read().decode("utf-8")
                )

        repro.api.run(horizon=6, metrics_port=0, on_slot=on_slot)
        assert "body" in seen  # scraped mid-run
        families = parse_openmetrics(seen["body"])
        assert "repro_slots" in families
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(seen["url"], timeout=0.5)


class TestShardedTelemetry:
    def test_sequential_run_streams_per_cell_series(self) -> None:
        reg = MetricsRegistry()
        run_sharded(
            metro_scenario(),
            horizon=8,
            cells=2,
            epoch=4,
            budget=40.0,
            registry=reg,
        )
        assert reg.counter("repro_slots_total").value(cell=0) == 8.0
        assert reg.counter("repro_slots_total").value(cell=1) == 8.0
        text = reg.render_openmetrics()
        assert 'repro_queue_backlog{cell="0"}' in text
        assert 'repro_queue_backlog{cell="1"}' in text
        assert reg.gauge("repro_slot_latency").value(cell=0) > 0.0
        budgets = reg.gauge("repro_cell_budget")
        assert budgets.value(cell=0) > 0.0
        assert budgets.value(cell=1) > 0.0
        assert reg.gauge("repro_shard_completed_slots").value() == 8.0
        rows = histogram_summaries(reg, "repro_kernel_seconds")
        cells_seen = {row["labels"].get("cell") for row in rows}
        assert cells_seen >= {"0", "1"}

    def test_pooled_run_merges_worker_snapshots(self) -> None:
        reg = MetricsRegistry()
        result = run_sharded(
            metro_scenario(),
            horizon=4,
            cells=2,
            epoch=2,
            budget=40.0,
            processes=2,
            registry=reg,
            monitors=True,
        )
        assert reg.counter("repro_slots_total").value(cell=0) == 4.0
        assert reg.counter("repro_slots_total").value(cell=1) == 4.0
        text = reg.render_openmetrics()
        parse_openmetrics(text)
        assert 'cell="0"' in text and 'cell="1"' in text
        assert result.health is not None

    def test_sharded_monitor_alerts_carry_cell_label(self) -> None:
        # A starvation budget forces budget-drift alerts in every cell.
        result = run_sharded(
            metro_scenario(),
            horizon=8,
            cells=2,
            epoch=4,
            budget=1e-4,
            monitors=True,
        )
        health = result.health
        assert health is not None
        names = {status.name for status in health.statuses}
        assert any(name.startswith("cell0/") for name in names)
        assert any(name.startswith("cell1/") for name in names)
        drift_alerts = [a for a in health.alerts if a.monitor == "budget"]
        assert drift_alerts
        assert {a.data.get("cell") for a in drift_alerts} >= {0, 1}
        assert result.merged.health is health

    def test_pooled_health_matches_cells(self) -> None:
        result = run_sharded(
            metro_scenario(),
            horizon=4,
            cells=2,
            epoch=2,
            budget=1e-4,
            processes=2,
            monitors=True,
        )
        health = result.health
        assert health is not None
        assert any(s.name.startswith("cell0/") for s in health.statuses)
        assert any(s.name.startswith("cell1/") for s in health.statuses)
        assert any(a.data.get("cell") in {0, 1} for a in health.alerts)


class TestApiWiring:
    def test_cells_with_custom_monitor_suite_still_conflicts(self) -> None:
        from repro.exceptions import ConfigurationError
        from repro.obs.monitors import MonitorSuite

        with pytest.raises(ConfigurationError, match="monitors"):
            repro.api.run(horizon=4, cells=2, monitors=MonitorSuite(()))

    def test_cells_with_monitors_true_allowed(self) -> None:
        result = repro.api.run(
            scenario=metro_scenario(), horizon=4, cells=2, monitors=True
        )
        assert result.health is not None


class TestProfileReport:
    def test_render_profile_report_lists_hot_series(self) -> None:
        reg = MetricsRegistry()
        repro.api.run(horizon=4, metrics_registry=reg)
        text = render_profile_report(reg, ascii_only=True)
        assert "repro_phase_seconds" in text
        assert "repro_kernel_seconds" in text
        assert "gap_sweep" in text

    def test_empty_registry_renders_placeholder(self) -> None:
        assert "no profile" in render_profile_report(MetricsRegistry())

    def test_histogram_summaries_sorted_by_total(self) -> None:
        reg = MetricsRegistry()
        h = reg.histogram("repro_t_seconds", buckets=DEFAULT_SECONDS_BUCKETS)
        h.observe(0.001, phase="cold")
        for _ in range(5):
            h.observe(0.1, phase="hot")
        rows = histogram_summaries(reg, "repro_t_seconds")
        assert rows[0]["labels"]["phase"] == "hot"
        assert rows[0]["p95"] >= rows[0]["p50"] > 0.0


class TestSnapshotDelta:
    """Incremental flushes for resident workers (PR 9)."""

    def test_counter_delta_ships_increments_only(self) -> None:
        worker = MetricsRegistry()
        c = worker.counter("repro_n_total")
        c.inc(2.0, cell=0)
        first = worker.snapshot_delta()
        assert first["counters"]["repro_n"]["series"] == {(("cell", "0"),): 2.0}
        c.inc(3.0, cell=0)
        second = worker.snapshot_delta()
        assert second["counters"]["repro_n"]["series"] == {(("cell", "0"),): 3.0}

    def test_quiet_flush_returns_none(self) -> None:
        worker = MetricsRegistry()
        worker.counter("repro_n_total").inc(1.0)
        assert worker.snapshot_delta() is not None
        assert worker.snapshot_delta() is None
        gen = worker.flush_generation
        assert worker.snapshot_delta() is None
        assert worker.flush_generation == gen + 1

    def test_first_flush_ships_prebound_families(self) -> None:
        # A sink pre-binds its crash counter at attach time; the first
        # delta must carry the (empty) family so a parent registry
        # exposes the same family set as a sequential run's.
        worker = MetricsRegistry()
        worker.counter("repro_crashes_total", "crashes")
        worker.gauge("repro_q", "queue")
        worker.histogram("repro_t_seconds", buckets=(1.0,))
        delta = worker.snapshot_delta()
        assert "repro_crashes" in delta["counters"]
        assert "repro_q" in delta["gauges"]
        assert "repro_t_seconds" in delta["histograms"]
        parent = MetricsRegistry()
        parent.merge_snapshot(delta, generation=1)
        assert parent.get("repro_crashes_total") is not None

    def test_deltas_merge_like_snapshots(self) -> None:
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        mirror = MetricsRegistry()  # merged from full snapshots
        c = worker.counter("repro_n_total")
        h = worker.histogram("repro_t_seconds", buckets=(1.0,))
        g = worker.gauge("repro_q")
        for epoch in range(3):
            c.inc(1.0, cell=0)
            h.observe(0.5 * epoch)
            g.set(float(epoch))
            parent.merge_snapshot(worker.snapshot_delta(), generation=epoch + 1)
        mirror.merge_snapshot(worker.snapshot(), generation=3)
        assert (
            parent.counter("repro_n_total").value(cell=0)
            == mirror.counter("repro_n_total").value(cell=0)
            == 3.0
        )
        assert (
            parent.histogram("repro_t_seconds").stats()
            == mirror.histogram("repro_t_seconds").stats()
        )
        assert parent.gauge("repro_q").value() == 2.0

    def test_gauge_delta_ships_on_restamp_even_if_value_same(self) -> None:
        worker = MetricsRegistry()
        g = worker.gauge("repro_q")
        g.set(1.0)
        worker.snapshot_delta()
        g.set(1.0)  # same value, new stamp
        delta = worker.snapshot_delta()
        assert delta is not None and "repro_q" in delta["gauges"]
