"""Tests for the theory-bound helpers and fairness metrics."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.fairness import (
    deadline_miss_rate,
    jain_index,
    slot_latency_fairness,
)
from repro.core.congestion_game import OffloadingCongestionGame
from repro.core.theory import (
    bdma_approximation_ratio,
    cgba_iteration_bound,
    check_bdma_guarantee,
    check_cgba_guarantee,
)
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace

from conftest import make_tiny_network, make_tiny_state
from helpers import brute_force_p2a


class TestRatios:
    def test_bdma_ratio_composition(self) -> None:
        network = make_tiny_network()  # R_F = 2.0
        assert bdma_approximation_ratio(network) == pytest.approx(2.62 * 2.0)
        assert bdma_approximation_ratio(network, slack=0.1) == pytest.approx(
            2.62 * 2.0 / 0.2
        )

    def test_cgba_guarantee_holds_on_tiny_instance(self) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        space = StrategySpace(network, state.coverage())
        frequencies = np.array([2.0, 3.0, 2.5])
        _, optimum = brute_force_p2a(network, state, space, frequencies)
        for seed in range(5):
            result = repro.solve_p2a_cgba(
                network, state, space, frequencies, np.random.default_rng(seed)
            )
            check = check_cgba_guarantee(result.total_latency, optimum)
            assert check.satisfied
            assert check.headroom > 1.0  # bound is loose in practice

    def test_bdma_guarantee_check(self) -> None:
        network = make_tiny_network()
        check = check_bdma_guarantee(
            network, measured_objective=10.0, reference_objective=3.0
        )
        assert check.bound == pytest.approx(2.62 * 2.0 * 3.0)
        assert check.satisfied
        failing = check_bdma_guarantee(
            network, measured_objective=100.0, reference_objective=3.0
        )
        assert not failing.satisfied

    def test_iteration_bound(self) -> None:
        network = make_tiny_network()
        state = make_tiny_state()
        space = StrategySpace(network, state.coverage())
        game = OffloadingCongestionGame(
            network, state, space, np.full(3, 2.0),
            rng=np.random.default_rng(0),
        )
        bound_01 = cgba_iteration_bound(game, 0.1)
        bound_001 = cgba_iteration_bound(game, 0.01)
        assert bound_001 == pytest.approx(10.0 * bound_01)
        with pytest.raises(ValueError):
            cgba_iteration_bound(game, 0.0)


class TestJainIndex:
    def test_equal_allocation_is_one(self) -> None:
        assert jain_index(np.full(7, 3.2)) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self) -> None:
        values = np.zeros(10)
        values[3] = 5.0
        assert jain_index(values) == pytest.approx(0.1)

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            jain_index(np.array([]))
        with pytest.raises(ConfigurationError):
            jain_index(np.zeros(3))
        with pytest.raises(ConfigurationError):
            jain_index(np.array([-1.0, 2.0]))


class TestDeadlineMissRate:
    def test_counts_exceedances(self) -> None:
        latencies = np.array([0.1, 0.2, 0.5, 1.0])
        assert deadline_miss_rate(latencies, 0.3) == pytest.approx(0.5)
        assert deadline_miss_rate(latencies, 2.0) == 0.0
        assert deadline_miss_rate(latencies, 0.05) == 1.0

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            deadline_miss_rate(np.array([]), 1.0)
        with pytest.raises(ConfigurationError):
            deadline_miss_rate(np.array([1.0]), 0.0)


class TestSlotFairness:
    def test_statistics_from_dpp_record(self) -> None:
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(0), v=50.0, budget=20.0, z=1
        )
        state = make_tiny_state()
        record = controller.step(state)
        fairness = slot_latency_fairness(network, state, record)
        assert 0.0 < fairness.jain <= 1.0
        assert fairness.worst >= fairness.p95 >= fairness.mean > 0.0
        assert fairness.worst_to_mean >= 1.0

    def test_square_root_fairness_is_reasonably_even(self) -> None:
        # Lemma 1's sqrt-proportional shares keep per-device latencies in
        # the same ballpark on homogeneous-ish demands.
        network = make_tiny_network()
        controller = repro.DPPController(
            network, np.random.default_rng(1), v=50.0, budget=20.0, z=2
        )
        state = make_tiny_state()
        fairness = slot_latency_fairness(
            network, state, controller.step(state)
        )
        assert fairness.jain > 0.6
