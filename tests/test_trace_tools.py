"""Tests for the trace toolkit (repro.obs.trace)."""

from __future__ import annotations

import json

import pytest

import repro
from repro.obs import (
    FlightRecorder,
    JsonlSink,
    Probe,
    RunManifest,
    Trace,
    diff_traces,
    load_trace,
    manifest_path_for,
    read_jsonl,
)

CONFIG = repro.ScenarioConfig(num_devices=8)


def traced_run(path, *, seed: int = 7, horizon: int = 5):
    """One short traced simulation; returns (result, probe)."""
    probe = Probe(sinks=(JsonlSink(path),))
    result = repro.api.run(
        controller="dpp", horizon=horizon, seed=seed, z=1,
        scenario_config=CONFIG, tracer=probe,
    )
    probe.close()
    return result, probe


class TestLoadTrace:
    def test_round_trip_from_a_real_run(self, tmp_path) -> None:
        path = tmp_path / "run.jsonl"
        result, probe = traced_run(path)
        trace = load_trace(path)
        assert len(trace.slots) == 5
        assert [s["t"] for s in trace.slots] == list(range(5))
        # Counters collapse to the same totals the in-memory aggregator saw.
        assert trace.counters == pytest.approx(probe.phases.counters)
        metrics = trace.metrics()
        assert metrics["mean_latency"] == pytest.approx(
            result.time_average_latency()
        )
        assert metrics["mean_cost"] == pytest.approx(result.time_average_cost())
        assert "counter/engine.moves" in metrics
        totals = trace.phase_totals()
        assert {"slot", "slot/bdma", "slot/queue"} <= set(totals)
        assert all(v >= 0.0 for v in totals.values())

    def test_unknown_kinds_are_skipped(self, tmp_path) -> None:
        path = tmp_path / "t.jsonl"
        lines = [
            {"kind": "gauge", "name": "g", "value": 1.0},
            {"kind": "hologram", "name": "future", "payload": 1},
        ]
        path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        trace = load_trace(path)
        assert trace.gauges["g"] == [1.0]

    def test_summary_mentions_manifest_and_phases(self, tmp_path) -> None:
        path = tmp_path / "run.jsonl"
        traced_run(path)
        RunManifest(config={"h": 5}, seed=7).finish().write(
            manifest_path_for(path)
        )
        text = load_trace(path).summary()
        assert "seed=7" in text
        assert "slot/bdma" in text
        assert "mean_latency" in text

    def test_aggregator_replay_matches_table(self, tmp_path) -> None:
        path = tmp_path / "run.jsonl"
        _, probe = traced_run(path)
        replayed = load_trace(path).aggregator()
        assert replayed.phase_stats("slot")["count"] == 5
        assert replayed.counters == pytest.approx(probe.phases.counters)


class TestDiffTraces:
    def _pair(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        traced_run(a)
        traced_run(b)
        return a, b

    def test_identical_runs_diff_clean(self, tmp_path) -> None:
        a, b = self._pair(tmp_path)
        diff = diff_traces(a, b, include_times=False)
        assert diff.ok
        assert "no regressions" in diff.render()

    def test_metric_regression_detected(self, tmp_path) -> None:
        a, b = self._pair(tmp_path)
        events = read_jsonl(b)
        for e in events:
            if e["kind"] == "event" and e["name"] == "slot":
                e["data"]["latency"] *= 1.5
        b.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        diff = diff_traces(a, b, include_times=False)
        assert not diff.ok
        assert any("mean_latency" in r for r in diff.regressions)

    def test_improvements_never_regress(self, tmp_path) -> None:
        a, b = self._pair(tmp_path)
        events = read_jsonl(b)
        for e in events:
            if e["kind"] == "event" and e["name"] == "slot":
                e["data"]["latency"] *= 0.5
        b.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        assert diff_traces(a, b, include_times=False).ok

    def test_phase_time_regression_detected(self, tmp_path) -> None:
        a, b = self._pair(tmp_path)
        events = read_jsonl(b)
        for e in events:
            if e["kind"] == "span" and e["name"] == "slot/bdma":
                e["seconds"] = e["seconds"] * 10.0 + 1.0
        b.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        diff = diff_traces(a, b)
        assert not diff.ok
        assert any("slot/bdma" in r for r in diff.regressions)
        # The same pair gates clean when timings are excluded.
        assert diff_traces(a, b, include_times=False).ok

    def test_sub_noise_phase_growth_is_ignored(self, tmp_path) -> None:
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        base = [{"kind": "span", "name": "p", "start": 0.0, "seconds": 1e-5}]
        grown = [{"kind": "span", "name": "p", "start": 0.0, "seconds": 9e-5}]
        a.write_text(json.dumps(base[0]) + "\n")
        b.write_text(json.dumps(grown[0]) + "\n")
        # 9x relative growth but far below the absolute noise floor.
        assert diff_traces(a, b).ok

    def test_missing_phase_is_a_note_not_a_regression(self, tmp_path) -> None:
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(json.dumps(
            {"kind": "span", "name": "only_base", "start": 0.0, "seconds": 1.0}
        ) + "\n")
        b.write_text(json.dumps(
            {"kind": "span", "name": "only_new", "start": 0.0, "seconds": 1.0}
        ) + "\n")
        diff = diff_traces(a, b)
        assert diff.ok
        assert len(diff.notes) == 2

    def test_solve_seconds_excluded_without_times(self, tmp_path) -> None:
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        for path, solve in ((a, 0.001), (b, 0.5)):
            path.write_text(json.dumps({
                "kind": "event", "name": "slot",
                "data": {"t": 0, "latency": 1.0, "solve_seconds": solve},
            }) + "\n")
        assert not diff_traces(a, b).ok
        assert diff_traces(a, b, include_times=False).ok


class TestFlightRecorder:
    def _event(self, t: int) -> list[dict]:
        return [
            {"kind": "gauge", "name": "queue.backlog", "value": float(t)},
            {"kind": "event", "name": "slot", "data": {"t": t}},
        ]

    def test_ring_keeps_only_the_last_slots(self, tmp_path) -> None:
        recorder = FlightRecorder(tmp_path / "dump.jsonl", capacity_slots=2)
        for t in range(5):
            for event in self._event(t):
                recorder.emit(event)
        slots = [e["data"]["t"] for e in recorder.buffered_events()
                 if e["kind"] == "event"]
        assert slots == [3, 4]

    def test_crash_event_triggers_a_dump(self, tmp_path) -> None:
        path = tmp_path / "dump.jsonl"
        recorder = FlightRecorder(path, capacity_slots=8)
        for event in self._event(0):
            recorder.emit(event)
        assert recorder.dumped is None
        recorder.emit({"kind": "event", "name": "crash",
                       "data": {"slot": 0, "error": "boom"}})
        assert recorder.dumped == path
        events = read_jsonl(path)
        assert events[-1]["name"] == "crash"

    def test_dump_on_simulation_exception(self, tmp_path) -> None:
        path = tmp_path / "dump.jsonl"
        recorder = FlightRecorder(path, capacity_slots=2)
        probe = Probe(sinks=(recorder,))

        def boom(record) -> None:
            if record.t == 3:
                raise RuntimeError("injected fault")

        with pytest.raises(RuntimeError, match="injected fault"):
            repro.api.run(
                controller="dpp", horizon=6, seed=7, z=1,
                scenario_config=CONFIG, tracer=probe, on_slot=boom,
            )
        trace = load_trace(path)
        # Only the ring's worth of slots survives, plus the crash event.
        assert [s["t"] for s in trace.slots] == [2, 3]
        crash = [e for e in trace.events if e.name == "crash"]
        assert len(crash) == 1
        assert crash[0].data["slot"] == 3
        assert "RuntimeError" in crash[0].data["error"]
