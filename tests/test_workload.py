"""Tests for task batches, generators, traces, and suitability draws."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, ValidationError
from repro.workload.generators import (
    PeriodicTaskGenerator,
    TraceTaskGenerator,
    UniformTaskGenerator,
)
from repro.workload.suitability import clustered_suitability, uniform_suitability
from repro.workload.tasks import TaskBatch
from repro.workload.traces import diurnal_profile, synthetic_video_views


class TestTaskBatch:
    def test_basic_properties(self) -> None:
        batch = TaskBatch(cycles=np.array([1e6, 2e6]), bits=np.array([1e3, 3e3]))
        assert batch.num_devices == 2
        assert batch.total_cycles == pytest.approx(3e6)
        assert batch.total_bits == pytest.approx(4e3)

    def test_scaled(self) -> None:
        batch = TaskBatch(cycles=np.array([2.0]), bits=np.array([4.0]))
        scaled = batch.scaled(cycle_factor=0.5, bit_factor=2.0)
        assert scaled.cycles[0] == pytest.approx(1.0)
        assert scaled.bits[0] == pytest.approx(8.0)

    def test_mismatched_shapes_rejected(self) -> None:
        with pytest.raises(ValidationError):
            TaskBatch(cycles=np.array([1.0, 2.0]), bits=np.array([1.0]))

    def test_negative_rejected(self) -> None:
        with pytest.raises(ValidationError):
            TaskBatch(cycles=np.array([-1.0]), bits=np.array([1.0]))

    def test_nan_rejected(self) -> None:
        with pytest.raises(ValueError):
            TaskBatch(cycles=np.array([np.nan]), bits=np.array([1.0]))


class TestUniformGenerator:
    def test_paper_ranges(self, rng: np.random.Generator) -> None:
        gen = UniformTaskGenerator(200)
        batch = gen.generate(0, rng)
        assert batch.num_devices == 200
        assert np.all(batch.cycles >= 50e6) and np.all(batch.cycles <= 200e6)
        assert np.all(batch.bits >= 3e6) and np.all(batch.bits <= 10e6)

    def test_iid_across_slots(self, rng: np.random.Generator) -> None:
        gen = UniformTaskGenerator(50)
        b0, b1 = gen.generate(0, rng), gen.generate(1, rng)
        assert not np.allclose(b0.cycles, b1.cycles)

    def test_invalid_config_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            UniformTaskGenerator(0)
        with pytest.raises(ConfigurationError):
            UniformTaskGenerator(5, cycles_range=(10.0, 1.0))


class TestPeriodicGenerator:
    def make(self, noise_cv: float = 0.0) -> PeriodicTaskGenerator:
        return PeriodicTaskGenerator(
            base_cycles=np.full(8, 100e6),
            base_bits=np.full(8, 5e6),
            profile=np.array([0.5, 1.0, 1.5, 1.0]),
            noise_cv=noise_cv,
        )

    def test_trend_is_periodic(self, rng: np.random.Generator) -> None:
        gen = self.make()
        assert gen.period == 4
        b0 = gen.generate(0, rng)
        b4 = gen.generate(4, rng)
        np.testing.assert_allclose(b0.cycles, b4.cycles)
        np.testing.assert_allclose(b0.cycles, 50e6)
        np.testing.assert_allclose(gen.generate(2, rng).cycles, 150e6)

    def test_noise_respects_floor(self) -> None:
        gen = PeriodicTaskGenerator(
            base_cycles=np.full(100, 1.0),
            base_bits=np.full(100, 1.0),
            profile=np.array([0.1]),
            noise_cv=5.0,
            floor_fraction=0.05,
        )
        batch = gen.generate(0, np.random.default_rng(0))
        assert np.all(batch.cycles >= 0.05)
        assert np.all(batch.bits >= 0.05)

    def test_mean_tracks_trend(self) -> None:
        gen = self.make(noise_cv=0.2)
        rng = np.random.default_rng(1)
        draws = np.array([gen.generate(1, rng).cycles for _ in range(300)])
        assert float(draws.mean()) == pytest.approx(100e6, rel=0.02)

    def test_invalid_configs_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            PeriodicTaskGenerator(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            PeriodicTaskGenerator(
                np.array([1.0]), np.array([1.0]), profile=np.array([-1.0])
            )
        with pytest.raises(ConfigurationError):
            PeriodicTaskGenerator(
                np.array([0.0]), np.array([1.0])
            )


class TestTraceGenerator:
    def test_replay_and_wraparound(self, rng: np.random.Generator) -> None:
        cycles = np.arange(6, dtype=float).reshape(3, 2) + 1.0
        bits = cycles * 10.0
        gen = TraceTaskGenerator(cycles, bits)
        assert gen.num_devices == 2
        np.testing.assert_allclose(gen.generate(0, rng).cycles, [1.0, 2.0])
        np.testing.assert_allclose(gen.generate(4, rng).cycles, [3.0, 4.0])

    def test_shape_mismatch_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            TraceTaskGenerator(np.ones((2, 3)), np.ones((3, 2)))


class TestTraces:
    def test_diurnal_profile_bounds_and_peak(self) -> None:
        profile = diurnal_profile(period=24, low=0.6, high=1.5, peak_hour=20.0)
        assert profile.shape == (24,)
        assert profile.min() == pytest.approx(0.6)
        assert profile.max() == pytest.approx(1.5)
        assert int(np.argmax(profile)) == 20

    def test_profile_validates(self) -> None:
        with pytest.raises(ConfigurationError):
            diurnal_profile(period=1)
        with pytest.raises(ConfigurationError):
            diurnal_profile(low=2.0, high=1.0)
        with pytest.raises(ConfigurationError):
            diurnal_profile(peak_hour=5.0, trough_hour=5.0)

    def test_video_views_structure(self) -> None:
        trace = synthetic_video_views(14, np.random.default_rng(0))
        assert trace.shape == (14 * 24,)
        assert np.all(trace >= 0.0)
        daily = trace.reshape(14, 24)
        hourly_mean = daily.mean(axis=0)
        # Evening peak dominates the overnight trough.
        assert hourly_mean[20] > 1.5 * hourly_mean[4]
        # Weekend bump: days 5, 6 busier than days 0-4 on average.
        weekday = daily[[0, 1, 2, 3, 4, 7, 8, 9, 10, 11]].mean()
        weekend = daily[[5, 6, 12, 13]].mean()
        assert weekend > weekday

    def test_video_views_invalid(self) -> None:
        with pytest.raises(ConfigurationError):
            synthetic_video_views(0, np.random.default_rng(0))

    @given(days=st.integers(1, 5), cv=st.floats(0.0, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_property_views_nonnegative(self, days: int, cv: float) -> None:
        trace = synthetic_video_views(
            days, np.random.default_rng(0), noise_cv=cv
        )
        assert np.all(trace >= 0.0)


class TestSuitability:
    def test_uniform_range(self, rng: np.random.Generator) -> None:
        sigma = uniform_suitability(rng, 30, 8)
        assert sigma.shape == (30, 8)
        assert np.all(sigma >= 0.5) and np.all(sigma <= 1.0)

    def test_uniform_validation(self, rng: np.random.Generator) -> None:
        with pytest.raises(ConfigurationError):
            uniform_suitability(rng, 0, 8)
        with pytest.raises(ConfigurationError):
            uniform_suitability(rng, 5, 5, low=0.9, high=0.5)

    def test_clustered_matched_beats_mismatched(self) -> None:
        rng = np.random.default_rng(0)
        sigma = clustered_suitability(rng, 200, 40, num_types=2,
                                      matched=0.95, mismatched=0.55)
        assert sigma.shape == (200, 40)
        assert np.all(sigma > 0.0) and np.all(sigma <= 1.0)
        # Bimodal: values cluster near the two levels.
        near_match = np.abs(sigma - 0.95) < 0.05
        near_mismatch = np.abs(sigma - 0.55) < 0.05
        assert (near_match | near_mismatch).mean() > 0.95

    def test_clustered_validation(self) -> None:
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            clustered_suitability(rng, 5, 5, num_types=0)
        with pytest.raises(ConfigurationError):
            clustered_suitability(rng, 5, 5, matched=0.4, mismatched=0.6)
